// Package policy is the gating-policy plugin registry: every power
// manager the simulator can run — PowerChop itself, the paper's
// baselines, and the competing policies of the zoo (DarkGates-style
// bypass gating, AgileWatts-style hierarchical idle states) — registers
// here as a Spec carrying its name, a parameter schema with defaults and
// bounds, and a factory producing a fresh core.Manager per run.
//
// The registry is the single source of truth for manager construction:
// the public Options.Manager string resolves through Lookup, the CLI's
// usage text and the serve API's /api/policies listing derive from
// Names/All, and the auto-tuner sweeps a Spec's parameter grid. Each
// (spec, parameters) pair has a deterministic fingerprint — the spec
// name plus the canonical rendering of its resolved parameters — which
// threads policy identity into persistent result-cache keys, so two
// processes sweeping the same grid share cached simulations exactly.
package policy

import (
	"fmt"
	"sort"
	"sync"

	"powerchop/internal/core"
	"powerchop/internal/rescache"
)

// Param describes one tunable parameter of a policy: its schema entry.
type Param struct {
	// Name keys the parameter in a Params map (kebab-case by
	// convention, e.g. "idle-cycles").
	Name string
	// Description says what the parameter controls.
	Description string
	// Default is the value used when the parameter is not supplied.
	Default float64
	// Min and Max bound accepted values inclusively.
	Min, Max float64
}

// Params is a parameter assignment for a policy. A nil map selects
// every default.
type Params map[string]float64

// Clone returns an independent copy (nil stays nil).
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Spec is one registered gating policy.
type Spec struct {
	// Name is the registry key and the Options.Manager string selecting
	// the policy (e.g. "powerchop", "darkgates").
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Params is the parameter schema, in declaration order.
	Params []Param
	// Build constructs a fresh manager for one run from a fully
	// resolved parameter set (every schema parameter present, bounds
	// already checked). Managers are stateful: Build must never return
	// a shared instance.
	Build func(p Params) (core.Manager, error)
}

// Defaults returns the schema's default assignment.
func (s Spec) Defaults() Params {
	out := make(Params, len(s.Params))
	for _, p := range s.Params {
		out[p.Name] = p.Default
	}
	return out
}

// param finds a schema entry by name.
func (s Spec) param(name string) (Param, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Validate checks an assignment against the schema: every supplied key
// must exist and every value must sit within its parameter's bounds.
// Missing parameters are fine — Resolve fills defaults.
func (s Spec) Validate(p Params) error {
	// Deterministic error selection: report the lexically first
	// offending key, not a map-iteration-order-dependent one.
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sp, ok := s.param(k)
		if !ok {
			return fmt.Errorf("policy %s: unknown parameter %q (known: %v)", s.Name, k, s.paramNames())
		}
		if v := p[k]; v < sp.Min || v > sp.Max {
			return fmt.Errorf("policy %s: parameter %s = %v out of [%v, %v]", s.Name, k, v, sp.Min, sp.Max)
		}
	}
	return nil
}

// paramNames lists the schema's parameter names in declaration order.
func (s Spec) paramNames() []string {
	out := make([]string, len(s.Params))
	for i, p := range s.Params {
		out[i] = p.Name
	}
	return out
}

// Resolve validates an assignment and overlays it on the defaults,
// returning the complete parameter set Build consumes.
func (s Spec) Resolve(p Params) (Params, error) {
	if err := s.Validate(p); err != nil {
		return nil, err
	}
	out := s.Defaults()
	for k, v := range p {
		out[k] = v
	}
	return out, nil
}

// Fingerprint returns the deterministic identity of (policy, params)
// for result-cache keys and tuner bookkeeping: the spec name plus the
// canonical rendering of the fully resolved parameters. Two
// assignments that resolve to the same values fingerprint identically
// regardless of which defaults were spelled out.
func (s Spec) Fingerprint(p Params) (string, error) {
	resolved, err := s.Resolve(p)
	if err != nil {
		return "", err
	}
	return s.Name + rescache.CanonicalParams(resolved), nil
}

// Manager resolves the parameters and builds a fresh manager.
func (s Spec) Manager(p Params) (core.Manager, error) {
	resolved, err := s.Resolve(p)
	if err != nil {
		return nil, err
	}
	return s.Build(resolved)
}

// registry is the process-wide spec table. Registration happens in
// package init functions; lookups are read-mostly and may be
// concurrent (figure sweeps build managers from many goroutines).
var (
	mu       sync.RWMutex
	registry = map[string]Spec{}
)

// Register adds a spec. It panics on a duplicate name, an empty name,
// a nil factory or an inconsistent schema — registration is init-time
// wiring, and a broken spec is a programming error.
func Register(s Spec) {
	if s.Name == "" {
		panic("policy: registering spec with empty name")
	}
	if s.Build == nil {
		panic(fmt.Sprintf("policy %s: nil Build factory", s.Name))
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if p.Name == "" {
			panic(fmt.Sprintf("policy %s: unnamed parameter", s.Name))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("policy %s: duplicate parameter %q", s.Name, p.Name))
		}
		seen[p.Name] = true
		if p.Min > p.Max || p.Default < p.Min || p.Default > p.Max {
			panic(fmt.Sprintf("policy %s: parameter %s default %v outside [%v, %v]",
				s.Name, p.Name, p.Default, p.Min, p.Max))
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", s.Name))
	}
	registry[s.Name] = s
}

// Lookup finds a spec by name.
func Lookup(name string) (Spec, bool) {
	mu.RLock()
	defer mu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns the registered policy names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered spec, sorted by name.
func All() []Spec {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Spec, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
