package policy

import (
	"powerchop/internal/cde"
	"powerchop/internal/core"
)

// thresholdParams is the shared CDE-threshold schema of the PowerChop
// variants; only the defaults differ between the iso-performance and
// energy-minimizing configurations.
func thresholdParams(t cde.Thresholds) []Param {
	return []Param{
		{Name: "vpu", Description: "VPU criticality threshold (slowdown fraction)", Default: t.VPU, Min: 0, Max: 1},
		{Name: "bpu", Description: "BPU criticality threshold (slowdown fraction)", Default: t.BPU, Min: 0, Max: 1},
		{Name: "mlc1", Description: "MLC half-ways criticality threshold", Default: t.MLC1, Min: 0, Max: 1},
		{Name: "mlc2", Description: "MLC one-way criticality threshold (≤ mlc1)", Default: t.MLC2, Min: 0, Max: 1},
	}
}

// buildPowerChop assembles a PowerChop manager from a resolved
// threshold assignment. Cross-parameter constraints (mlc2 ≤ mlc1) are
// enforced by the CDE's own validation, so an inconsistent grid point
// fails here with the CDE's error.
func buildPowerChop(p Params) (core.Manager, error) {
	cfg := core.DefaultConfig()
	cfg.Thresholds = cde.Thresholds{
		VPU:  p["vpu"],
		BPU:  p["bpu"],
		MLC1: p["mlc1"],
		MLC2: p["mlc2"],
	}
	return core.NewPowerChop(cfg)
}

func init() {
	Register(Spec{
		Name:        "powerchop",
		Description: "Phase-triggered gating via HTB/PVT/CDE at iso-performance thresholds (the paper's manager)",
		Params:      thresholdParams(cde.DefaultThresholds()),
		Build:       buildPowerChop,
	})
	Register(Spec{
		Name:        "energy-min",
		Description: "PowerChop with aggressive thresholds trading slowdown for deeper gating (Section V-A)",
		Params:      thresholdParams(cde.AggressiveThresholds()),
		Build:       buildPowerChop,
	})
	Register(Spec{
		Name:        "full-power",
		Description: "Always-on baseline: every unit fully powered for the whole run",
		Build: func(Params) (core.Manager, error) {
			return core.AlwaysOn(), nil
		},
	})
	Register(Spec{
		Name:        "min-power",
		Description: "Minimally-powered baseline: VPU off, small BPU, 1-way MLC for the whole run",
		Build: func(Params) (core.Manager, error) {
			return core.MinPower(), nil
		},
	})
	Register(Spec{
		Name:        "timeout",
		Description: "Hardware idle-timeout VPU gating baseline (Section V-E)",
		Params: []Param{
			{
				Name:        "idle-cycles",
				Description: "idle cycles before the VPU is gated off",
				Default:     core.DefaultTimeoutCycles,
				Min:         1,
				Max:         1e7,
			},
		},
		Build: func(p Params) (core.Manager, error) {
			return core.NewTimeoutVPU(p["idle-cycles"])
		},
	})
	Register(Spec{
		Name:        "darkgates",
		Description: "PowerChop with a DarkGates-style break-even bypass: gating is vetoed when predicted stall cost exceeds predicted leakage savings",
		Params: []Param{
			{
				Name:        "horizon-windows",
				Description: "predicted gating horizon in EWMA-smoothed windows",
				Default:     8,
				Min:         1,
				Max:         256,
			},
			{
				Name:        "margin",
				Description: "required savings-to-cost ratio before gating is approved",
				Default:     1,
				Min:         0.1,
				Max:         10,
			},
		},
		Build: func(p Params) (core.Manager, error) {
			cfg := core.DefaultDarkGatesConfig()
			cfg.HorizonWindows = p["horizon-windows"]
			cfg.Margin = p["margin"]
			return core.NewDarkGates(cfg)
		},
	})
	Register(Spec{
		Name:        "agilewatts",
		Description: "AgileWatts-style hierarchical idle states: consecutive idle windows promote units shallow→deep",
		Params: []Param{
			{
				Name:        "vpu-idle",
				Description: "SIMD fraction at or below which a window is VPU-idle",
				Default:     0.001,
				Min:         0,
				Max:         1,
			},
			{
				Name:        "bpu-idle",
				Description: "misprediction rate at or below which a window is BPU-idle",
				Default:     0.005,
				Min:         0,
				Max:         1,
			},
			{
				Name:        "mlc-idle",
				Description: "L2 hits per instruction at or below which a window is MLC-idle",
				Default:     0.005,
				Min:         0,
				Max:         1,
			},
			{
				Name:        "shallow-after",
				Description: "consecutive idle windows before the shallow state",
				Default:     2,
				Min:         1,
				Max:         64,
			},
			{
				Name:        "deep-after",
				Description: "consecutive idle windows before the deep state",
				Default:     8,
				Min:         1,
				Max:         256,
			},
		},
		Build: func(p Params) (core.Manager, error) {
			cfg := core.DefaultAgileWattsConfig()
			cfg.VPUIdleRatio = p["vpu-idle"]
			cfg.BPUIdleRatio = p["bpu-idle"]
			cfg.MLCIdleRatio = p["mlc-idle"]
			cfg.ShallowAfter = int(p["shallow-after"])
			cfg.DeepAfter = int(p["deep-after"])
			return core.NewAgileWatts(cfg)
		},
	})
}
