package policy_test

// Registry conformance suite: every registered policy — present and
// future — must run the simulator deterministically and respect the
// whole-simulator invariants. A policy that registers but fails these
// checks would poison the result cache (nondeterminism) or the figures
// (broken energy accounting), so the suite runs each spec at its
// defaults and at a perturbed in-bounds point.

import (
	"encoding/json"
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/isa"
	"powerchop/internal/phase"
	"powerchop/internal/policy"
	"powerchop/internal/program"
	"powerchop/internal/sim"
)

// conformanceProgram is a small phased program exercising all three
// managed units: vector work, branchy work and a cache-straining stream.
func conformanceProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("conformance", "TEST", 11)
	mixed := b.Region(program.RegionSpec{
		Name:  "mixed",
		Insns: 30,
		Mix:   isa.Mix{VectorFrac: 0.15, BranchFrac: 0.1, LoadFrac: 0.2},
		Branches: []program.BranchModel{
			{Kind: program.Biased, Bias: 0.9},
		},
		Streams: []program.MemStream{{WorkingSet: 64 << 10}},
	})
	scalar := b.Region(program.RegionSpec{
		Name:     "scalar",
		Insns:    26,
		Mix:      isa.Mix{BranchFrac: 0.2, LoadFrac: 0.15},
		Branches: []program.BranchModel{{Kind: program.Patterned, Pattern: []bool{true, true, false}}},
		Streams:  []program.MemStream{{WorkingSet: 4 << 20, Stride: 64}},
	})
	b.Phase("vector", 600, map[int]float64{mixed: 1})
	b.Phase("scalar", 600, map[int]float64{scalar: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// perturb nudges every parameter off its default while staying strictly
// in bounds, so the suite also covers each policy's non-default wiring.
func perturb(spec policy.Spec) policy.Params {
	p := policy.Params{}
	for _, prm := range spec.Params {
		v := prm.Default * 1.5
		if v > prm.Max {
			v = (prm.Default + prm.Max) / 2
		}
		if v < prm.Min {
			v = prm.Min
		}
		p[prm.Name] = v
	}
	return p
}

func runConformance(t *testing.T, spec policy.Spec, params policy.Params) *sim.Result {
	t.Helper()
	m, err := spec.Manager(params)
	if err != nil {
		t.Fatalf("%s: Manager: %v", spec.Name, err)
	}
	res, err := sim.Run(conformanceProgram(t), sim.Config{
		Design:          arch.Server(),
		Manager:         m,
		Phase:           phase.Config{Capacity: 64, WindowSize: 50, SignatureLen: 4},
		MaxTranslations: 3000,
	})
	if err != nil {
		t.Fatalf("%s: Run: %v", spec.Name, err)
	}
	return res
}

func checkInvariants(t *testing.T, name string, res *sim.Result) {
	t.Helper()
	// Energy is positive, nonnegative per component, and decomposes
	// exactly into leakage + dynamic.
	total := res.Power.TotalEnergyJ()
	if total <= 0 {
		t.Errorf("%s: total energy %v not positive", name, total)
	}
	leak, dyn := res.Power.LeakageEnergyJ(), res.Power.DynamicEnergyJ()
	if leak < 0 || dyn < 0 {
		t.Errorf("%s: negative energy component: leak %v dyn %v", name, leak, dyn)
	}
	if diff := total - leak - dyn; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("%s: energy decomposition off by %v", name, diff)
	}
	// Every gated unit's residency covers the run, its leakage savings
	// stay within the 95% gating bound, and its gated fraction is sane.
	for _, u := range []string{arch.UnitVPU, arch.UnitBPU, arch.UnitMLC} {
		r := res.Power.Unit(u)
		if r.ResidencyCyc < res.Cycles*0.999 || r.ResidencyCyc > res.Cycles*1.001 {
			t.Errorf("%s: %s residency %v vs cycles %v", name, u, r.ResidencyCyc, res.Cycles)
		}
		if r.LeakSavedJ < 0 {
			t.Errorf("%s: %s negative leakage savings %v", name, u, r.LeakSavedJ)
		}
		if r.LeakSavedJ > r.FullLeakageJ*0.951 {
			t.Errorf("%s: %s saved more leakage than gating allows", name, u)
		}
	}
	for _, ua := range []struct {
		unit string
		frac float64
	}{{"VPU", res.VPU.GatedFrac}, {"BPU", res.BPU.GatedFrac}, {"MLC", res.MLC.GatedFrac}} {
		if ua.frac < 0 || ua.frac > 1 {
			t.Errorf("%s: %s gated fraction %v outside [0,1]", name, ua.unit, ua.frac)
		}
	}
	if res.Cycles < float64(res.GuestInsns)/arch.Server().IssueWidth {
		t.Errorf("%s: cycles below issue bound", name)
	}
}

// TestConformance runs every registered policy at defaults and at a
// perturbed point: two runs must produce byte-identical results
// (determinism is what makes the content-addressed cache sound), and
// each result must satisfy the simulator invariants.
func TestConformance(t *testing.T) {
	for _, spec := range policy.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			for _, tc := range []struct {
				label  string
				params policy.Params
			}{
				{"defaults", nil},
				{"perturbed", perturb(spec)},
			} {
				first := runConformance(t, spec, tc.params)
				second := runConformance(t, spec, tc.params)
				a, err := json.Marshal(first)
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(second)
				if err != nil {
					t.Fatal(err)
				}
				if string(a) != string(b) {
					t.Errorf("%s/%s: two identical runs produced different results", spec.Name, tc.label)
				}
				checkInvariants(t, spec.Name+"/"+tc.label, first)
			}
		})
	}
}

// TestConformanceBatched drives every registered policy — at defaults
// and at a perturbed point — as lanes of one batched simulation and
// requires each lane's result to be byte-identical to its solo run:
// the shared front-end must never leak state between lanes, whatever
// mix of policies rides in the group.
func TestConformanceBatched(t *testing.T) {
	p := conformanceProgram(t)
	var cfgs []sim.Config
	var labels []string
	var solo []*sim.Result
	for _, spec := range policy.All() {
		for _, tc := range []struct {
			label  string
			params policy.Params
		}{
			{"defaults", nil},
			{"perturbed", perturb(spec)},
		} {
			solo = append(solo, runConformance(t, spec, tc.params))
			m, err := spec.Manager(tc.params)
			if err != nil {
				t.Fatalf("%s: Manager: %v", spec.Name, err)
			}
			cfgs = append(cfgs, sim.Config{
				Design:          arch.Server(),
				Manager:         m,
				Phase:           phase.Config{Capacity: 64, WindowSize: 50, SignatureLen: 4},
				MaxTranslations: 3000,
			})
			labels = append(labels, spec.Name+"/"+tc.label)
		}
	}
	batched, err := sim.RunBatch(p, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, label := range labels {
		want, err := json.Marshal(solo[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(batched[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Errorf("%s: batched result differs from solo run", label)
		}
	}
}

// TestConformanceFingerprintsDistinct checks that no two registered
// policies collide at their default fingerprints — the result cache
// keys on this identity.
func TestConformanceFingerprintsDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, spec := range policy.All() {
		fp, err := spec.Fingerprint(nil)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("policies %s and %s share fingerprint %q", prev, spec.Name, fp)
		}
		seen[fp] = spec.Name
	}
}
