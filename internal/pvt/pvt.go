// Package pvt implements PowerChop's policy vector table (PVT): a small,
// fully associative hardware cache mapping phase signatures to power
// gating policy vectors (Section IV-B3).
//
// Each policy vector is 4 bits: one bit each for the VPU and BPU (gated
// on/off) and two bits for the MLC's three way-gating states (all ways,
// half the ways, one way). The table holds 16 entries and evicts with an
// approximate-LRU policy, modelled here as tree-PLRU — the standard
// hardware approximation. Evicted entries are returned to the caller (the
// CDE) which stores them in memory and re-registers them on a later
// capacity miss.
package pvt

import "fmt"

import (
	"powerchop/internal/obs"
	"powerchop/internal/phase"
)

// MLCState is the MLC's two-bit way-gating policy.
type MLCState uint8

const (
	// MLCAll keeps every way powered.
	MLCAll MLCState = iota
	// MLCHalf powers half the ways.
	MLCHalf
	// MLCOne powers a single way.
	MLCOne
)

// String names the state.
func (m MLCState) String() string {
	switch m {
	case MLCAll:
		return "all-ways"
	case MLCHalf:
		return "half-ways"
	case MLCOne:
		return "one-way"
	default:
		return fmt.Sprintf("mlc(%d)", uint8(m))
	}
}

// Valid reports whether the state is one of the three defined states.
func (m MLCState) Valid() bool { return m <= MLCOne }

// Ways returns the number of active ways the state implies for a cache
// with totalWays ways (minimum 1).
func (m MLCState) Ways(totalWays int) int {
	switch m {
	case MLCHalf:
		if totalWays >= 2 {
			return totalWays / 2
		}
		return 1
	case MLCOne:
		return 1
	default:
		return totalWays
	}
}

// PowerFrac returns the fraction of the MLC left powered in this state.
func (m MLCState) PowerFrac(totalWays int) float64 {
	return float64(m.Ways(totalWays)) / float64(totalWays)
}

// Policy is one decoded gating policy vector.
type Policy struct {
	VPUOn bool
	BPUOn bool // large predictor powered
	MLC   MLCState
}

// FullOn is the all-units-powered policy.
var FullOn = Policy{VPUOn: true, BPUOn: true, MLC: MLCAll}

// MinPower is the lowest-power policy (everything gated as far as it goes).
var MinPower = Policy{VPUOn: false, BPUOn: false, MLC: MLCOne}

// Encode packs the policy into the paper's 4-bit vector:
// bit 3 = VPU, bit 2 = BPU, bits 1..0 = MLC state.
func (p Policy) Encode() uint8 {
	v := uint8(p.MLC) & 0x3
	if p.BPUOn {
		v |= 1 << 2
	}
	if p.VPUOn {
		v |= 1 << 3
	}
	return v
}

// Decode unpacks a 4-bit policy vector.
func Decode(bits uint8) Policy {
	return Policy{
		VPUOn: bits&(1<<3) != 0,
		BPUOn: bits&(1<<2) != 0,
		MLC:   MLCState(bits & 0x3),
	}
}

// String renders the policy as "V=1,B=0,M=01"-style text like Figure 6.
func (p Policy) String() string {
	b := func(x bool) int {
		if x {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("V=%d,B=%d,M=%02b", b(p.VPUOn), b(p.BPUOn), uint8(p.MLC))
}

// DefaultEntries is the paper's PVT size.
const DefaultEntries = 16

// Replacement selects the PVT's eviction policy. The paper specifies
// "approximate LRU"; tree-PLRU is the standard hardware realization and
// the default. True LRU and random are provided for the replacement-policy
// ablation.
type Replacement uint8

const (
	// TreePLRU is the hardware-style approximate LRU (default).
	TreePLRU Replacement = iota
	// TrueLRU tracks exact recency (an idealized reference point).
	TrueLRU
	// Random evicts pseudo-randomly (the lower bound).
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case TreePLRU:
		return "tree-plru"
	case TrueLRU:
		return "true-lru"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("replacement(%d)", uint8(r))
	}
}

// Stats counts PVT events.
type Stats struct {
	Lookups       uint64
	Hits          uint64
	Misses        uint64
	Registrations uint64
	Evictions     uint64
}

// HitRate returns hits/lookups, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

type entry struct {
	sig     phase.Signature
	policy  Policy
	valid   bool
	lastUse uint64 // TrueLRU recency
}

// Table is the policy vector table.
type Table struct {
	entries []entry
	// plru holds the tree-PLRU state: entries-1 internal node bits. A
	// node bit of 0 points left, 1 points right; bits flip away from the
	// accessed way and the victim is found by following the pointers.
	plru    []bool
	repl    Replacement
	clock   uint64 // TrueLRU timestamp source
	rndBits uint64 // Random victim selector (xorshift state)
	stats   Stats
	tracer  obs.Tracer
}

// New builds a PVT with n entries (a power of two; the paper uses 16) and
// tree-PLRU replacement.
func New(n int) *Table { return NewWithReplacement(n, TreePLRU) }

// NewWithReplacement builds a PVT with the given eviction policy.
func NewWithReplacement(n int, repl Replacement) *Table {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("pvt: table size %d is not a positive power of two", n))
	}
	if repl > Random {
		panic(fmt.Sprintf("pvt: unknown replacement policy %d", repl))
	}
	return &Table{
		entries: make([]entry, n),
		plru:    make([]bool, n-1),
		repl:    repl,
		rndBits: 0x2545f4914f6cdd1d,
	}
}

// Replacement returns the table's eviction policy.
func (t *Table) Replacement() Replacement { return t.repl }

// Len returns the table capacity.
func (t *Table) Len() int { return len(t.entries) }

// Stats returns the event counters.
func (t *Table) Stats() Stats { return t.stats }

// SetTracer attaches an event tracer; lookups and evictions then emit
// KindPVTHit/KindPVTMiss/KindPVTEvict events. A nil tracer (the default)
// disables emission.
func (t *Table) SetTracer(tr obs.Tracer) { t.tracer = tr }

// touch updates recency state after an access to way w.
func (t *Table) touch(w int) {
	t.clock++
	t.entries[w].lastUse = t.clock
	if t.repl != TreePLRU {
		return
	}
	// Point every tree node on the path away from w.
	node := 0
	lo, hi := 0, len(t.entries)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w < mid {
			t.plru[node] = true // point right, away from the left half
			node = 2*node + 1
			hi = mid
		} else {
			t.plru[node] = false // point left
			node = 2*node + 2
			lo = mid
		}
	}
}

// victim picks the way to evict under the configured policy.
func (t *Table) victim() int {
	// Prefer an invalid entry.
	for i := range t.entries {
		if !t.entries[i].valid {
			return i
		}
	}
	switch t.repl {
	case TrueLRU:
		v := 0
		for i := range t.entries {
			if t.entries[i].lastUse < t.entries[v].lastUse {
				v = i
			}
		}
		return v
	case Random:
		// xorshift64 step.
		x := t.rndBits
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		t.rndBits = x
		return int(x % uint64(len(t.entries)))
	default:
		node := 0
		lo, hi := 0, len(t.entries)
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if t.plru[node] {
				node = 2*node + 2
				lo = mid
			} else {
				node = 2*node + 1
				hi = mid
			}
		}
		return lo
	}
}

// Lookup searches the table for sig. On a hit it returns the stored policy
// and refreshes the entry's recency.
func (t *Table) Lookup(sig phase.Signature) (Policy, bool) {
	t.stats.Lookups++
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].sig == sig {
			t.stats.Hits++
			t.touch(i)
			if t.tracer != nil {
				t.tracer.Emit(obs.Event{
					Kind:   obs.KindPVTHit,
					SigIDs: sig.IDs,
					SigN:   sig.N,
					Policy: t.entries[i].policy.Encode(),
					Count:  uint64(t.Occupancy()),
				})
			}
			return t.entries[i].policy, true
		}
	}
	t.stats.Misses++
	if t.tracer != nil {
		t.tracer.Emit(obs.Event{
			Kind:   obs.KindPVTMiss,
			SigIDs: sig.IDs,
			SigN:   sig.N,
			Count:  uint64(t.Occupancy()),
		})
	}
	return Policy{}, false
}

// Register installs (or updates) the policy for sig. When the table is
// full a stale entry is evicted approximate-LRU and returned so the CDE
// can spill it to memory.
func (t *Table) Register(sig phase.Signature, p Policy) (evictedSig phase.Signature, evictedPolicy Policy, evicted bool) {
	t.stats.Registrations++
	// Update in place on re-registration.
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].sig == sig {
			t.entries[i].policy = p
			t.touch(i)
			return phase.Signature{}, Policy{}, false
		}
	}
	w := t.victim()
	if t.entries[w].valid {
		evictedSig, evictedPolicy, evicted = t.entries[w].sig, t.entries[w].policy, true
		t.stats.Evictions++
		if t.tracer != nil {
			t.tracer.Emit(obs.Event{
				Kind:   obs.KindPVTEvict,
				SigIDs: evictedSig.IDs,
				SigN:   evictedSig.N,
				Policy: evictedPolicy.Encode(),
				Count:  uint64(w),
			})
		}
	}
	t.entries[w] = entry{sig: sig, policy: p, valid: true}
	t.touch(w)
	return evictedSig, evictedPolicy, evicted
}

// Contains reports whether sig is resident without touching recency or
// statistics (diagnostics only).
func (t *Table) Contains(sig phase.Signature) bool {
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].sig == sig {
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid entries.
func (t *Table) Occupancy() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
