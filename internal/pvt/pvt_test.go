package pvt

import (
	"testing"
	"testing/quick"

	"powerchop/internal/phase"
)

func sig(id uint32) phase.Signature {
	var s phase.Signature
	s.IDs[0] = id
	s.N = 1
	return s
}

func TestPolicyEncodeDecodeRoundTrip(t *testing.T) {
	for _, p := range []Policy{
		{}, {VPUOn: true}, {BPUOn: true}, {MLC: MLCHalf}, {MLC: MLCOne},
		{VPUOn: true, BPUOn: true, MLC: MLCAll},
		{VPUOn: true, BPUOn: false, MLC: MLCOne},
		FullOn, MinPower,
	} {
		if got := Decode(p.Encode()); got != p {
			t.Errorf("round trip %v -> %#b -> %v", p, p.Encode(), got)
		}
	}
}

func TestPolicyEncodeIs4Bits(t *testing.T) {
	f := func(v, b bool, m uint8) bool {
		p := Policy{VPUOn: v, BPUOn: b, MLC: MLCState(m % 3)}
		return p.Encode() <= 0xf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	p := Policy{VPUOn: true, MLC: MLCOne}
	if got := p.String(); got != "V=1,B=0,M=10" {
		t.Fatalf("String = %q", got)
	}
}

func TestMLCStateWays(t *testing.T) {
	cases := []struct {
		st    MLCState
		total int
		want  int
	}{
		{MLCAll, 8, 8},
		{MLCHalf, 8, 4},
		{MLCOne, 8, 1},
		{MLCHalf, 1, 1},
	}
	for _, c := range cases {
		if got := c.st.Ways(c.total); got != c.want {
			t.Errorf("%v.Ways(%d) = %d, want %d", c.st, c.total, got, c.want)
		}
	}
	if got := MLCOne.PowerFrac(8); got != 0.125 {
		t.Errorf("PowerFrac = %v", got)
	}
	if !MLCAll.Valid() || !MLCOne.Valid() || MLCState(3).Valid() {
		t.Error("Valid misclassifies")
	}
	if MLCHalf.String() != "half-ways" || MLCState(7).String() == "" {
		t.Error("String misbehaves")
	}
}

func TestLookupMissThenHit(t *testing.T) {
	tb := New(16)
	if _, hit := tb.Lookup(sig(1)); hit {
		t.Fatal("empty table hit")
	}
	tb.Register(sig(1), Policy{VPUOn: true})
	p, hit := tb.Lookup(sig(1))
	if !hit || !p.VPUOn {
		t.Fatalf("lookup = %v, %v", p, hit)
	}
	s := tb.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Registrations != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestReRegistrationUpdatesInPlace(t *testing.T) {
	tb := New(4)
	tb.Register(sig(1), Policy{VPUOn: true})
	_, _, evicted := tb.Register(sig(1), Policy{VPUOn: false, MLC: MLCOne})
	if evicted {
		t.Fatal("in-place update evicted")
	}
	if tb.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", tb.Occupancy())
	}
	p, _ := tb.Lookup(sig(1))
	if p.VPUOn || p.MLC != MLCOne {
		t.Fatalf("updated policy = %v", p)
	}
}

func TestEvictionReturnsVictim(t *testing.T) {
	tb := New(4)
	for i := uint32(0); i < 4; i++ {
		if _, _, ev := tb.Register(sig(i), Policy{}); ev {
			t.Fatalf("eviction while filling at %d", i)
		}
	}
	evSig, _, ev := tb.Register(sig(99), Policy{})
	if !ev {
		t.Fatal("full table did not evict")
	}
	if evSig == sig(99) {
		t.Fatal("evicted the newly inserted entry")
	}
	if tb.Stats().Evictions != 1 {
		t.Fatalf("eviction count = %d", tb.Stats().Evictions)
	}
	if tb.Occupancy() != 4 {
		t.Fatalf("occupancy = %d", tb.Occupancy())
	}
}

func TestPLRUSparesRecentlyUsed(t *testing.T) {
	tb := New(4)
	for i := uint32(0); i < 4; i++ {
		tb.Register(sig(i), Policy{})
	}
	// Touch 0 and 1 so they are recent; the victim must be 2 or 3.
	tb.Lookup(sig(0))
	tb.Lookup(sig(1))
	evSig, _, ev := tb.Register(sig(99), Policy{})
	if !ev {
		t.Fatal("no eviction")
	}
	if evSig == sig(0) || evSig == sig(1) {
		t.Fatalf("PLRU evicted recently used %v", evSig)
	}
	if !tb.Contains(sig(0)) || !tb.Contains(sig(1)) {
		t.Fatal("recently used entries were dropped")
	}
}

func TestPLRUCyclesThroughAllWays(t *testing.T) {
	// Inserting a long stream must spread evictions across the table, not
	// thrash a single way.
	tb := New(8)
	victims := map[uint32]bool{}
	for i := uint32(0); i < 64; i++ {
		evSig, _, ev := tb.Register(sig(i), Policy{})
		if ev {
			victims[evSig.IDs[0]] = true
		}
	}
	if len(victims) < 8 {
		t.Fatalf("only %d distinct victims over 64 inserts", len(victims))
	}
}

func TestContainsDoesNotTouchStats(t *testing.T) {
	tb := New(4)
	tb.Register(sig(1), Policy{})
	before := tb.Stats()
	tb.Contains(sig(1))
	tb.Contains(sig(2))
	if tb.Stats() != before {
		t.Fatal("Contains mutated stats")
	}
}

func TestStatsHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
	s = Stats{Lookups: 4, Hits: 1}
	if s.HitRate() != 0.25 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestDefaultEntriesMatchesPaper(t *testing.T) {
	if DefaultEntries != 16 {
		t.Fatal("PVT size drifted from the paper")
	}
}

func TestRegisterLookupProperty(t *testing.T) {
	// Any registered signature is immediately findable.
	tb := New(16)
	f := func(id uint32, bits uint8) bool {
		p := Decode(bits & 0xf)
		if !p.MLC.Valid() {
			p.MLC = MLCAll
		}
		tb.Register(sig(id), p)
		got, hit := tb.Lookup(sig(id))
		return hit && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReplacementString(t *testing.T) {
	if TreePLRU.String() != "tree-plru" || TrueLRU.String() != "true-lru" || Random.String() != "random" {
		t.Error("replacement names")
	}
	if Replacement(9).String() == "" {
		t.Error("unknown replacement string")
	}
}

func TestNewWithReplacementPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown replacement accepted")
		}
	}()
	NewWithReplacement(16, Replacement(9))
}

func TestTrueLRUEvictsExactLRU(t *testing.T) {
	tb := NewWithReplacement(4, TrueLRU)
	for i := uint32(0); i < 4; i++ {
		tb.Register(sig(i), Policy{})
	}
	// Touch 1, 2, 3 so 0 is the exact LRU.
	tb.Lookup(sig(1))
	tb.Lookup(sig(2))
	tb.Lookup(sig(3))
	evSig, _, ev := tb.Register(sig(99), Policy{})
	if !ev || evSig != sig(0) {
		t.Fatalf("true LRU evicted %v", evSig)
	}
	if tb.Replacement() != TrueLRU {
		t.Fatal("replacement accessor")
	}
}

func TestRandomReplacementStillFunctions(t *testing.T) {
	tb := NewWithReplacement(4, Random)
	for i := uint32(0); i < 64; i++ {
		tb.Register(sig(i), Policy{})
		if _, hit := tb.Lookup(sig(i)); !hit {
			t.Fatalf("just-registered %d missing", i)
		}
	}
	if tb.Occupancy() != 4 {
		t.Fatalf("occupancy = %d", tb.Occupancy())
	}
	// Random eviction must be deterministic across identical tables.
	a := NewWithReplacement(4, Random)
	b := NewWithReplacement(4, Random)
	for i := uint32(0); i < 32; i++ {
		ea, _, _ := a.Register(sig(i), Policy{})
		eb, _, _ := b.Register(sig(i), Policy{})
		if ea != eb {
			t.Fatal("random replacement not reproducible")
		}
	}
}

func TestPLRUApproximatesLRU(t *testing.T) {
	// Tree-PLRU must track true LRU closely under a recency-friendly
	// access pattern: the most recently touched entry is never evicted.
	tb := NewWithReplacement(8, TreePLRU)
	for i := uint32(0); i < 8; i++ {
		tb.Register(sig(i), Policy{})
	}
	for i := uint32(100); i < 200; i++ {
		tb.Lookup(sig(i - 1)) // touch the previous insert
		evSig, _, ev := tb.Register(sig(i), Policy{})
		if ev && evSig == sig(i-1) {
			t.Fatalf("PLRU evicted the most recently used entry at %d", i)
		}
	}
}
