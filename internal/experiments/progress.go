package experiments

import "time"

// RunState is where a (benchmark, kind) run is in its lifecycle.
type RunState string

const (
	// RunQueued means the run is registered but not yet holding a job
	// slot.
	RunQueued RunState = "queued"
	// RunSimulating means the run holds a slot and is executing.
	RunSimulating RunState = "simulating"
	// RunDone means the run completed and its result is cached.
	RunDone RunState = "done"
	// RunError means the run failed (the flight is dropped for retry).
	RunError RunState = "error"
)

// RunUpdate is one progress report about a run. During simulation the
// cycle/translation counters advance window by window; Elapsed and Err
// are set on the terminal states.
type RunUpdate struct {
	Benchmark    string
	Kind         Kind
	State        RunState
	Cycles       float64
	Translations uint64
	Total        uint64 // translation budget
	Windows      uint64
	Elapsed      time.Duration
	Err          error
}

// ProgressSink receives run lifecycle updates from a Runner. Updates for
// different runs arrive concurrently (one goroutine per in-flight
// simulation), so implementations must be safe for concurrent use. The
// sink is a pure observer: it cannot influence scheduling or results.
type ProgressSink interface {
	RunUpdate(RunUpdate)
}

// ProgressFunc adapts a function to the ProgressSink interface.
type ProgressFunc func(RunUpdate)

// RunUpdate implements ProgressSink.
func (f ProgressFunc) RunUpdate(u RunUpdate) { f(u) }

// report delivers an update to the runner's sink, if any.
func (r *Runner) report(u RunUpdate) {
	if r.Progress != nil {
		r.Progress.RunUpdate(u)
	}
}
