package experiments

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"powerchop/internal/workload"
)

// allKinds is every run configuration the figures use.
var allKinds = []Kind{
	KindFullPower, KindPowerChop, KindMinPower, KindTimeout,
	KindSmallBPU, KindMLCOne, KindChopVPU, KindChopBPU, KindChopMLC,
}

// TestResultSingleflight is the regression test for the duplicate-run
// hole: concurrent Result calls for one key must simulate exactly once,
// with every caller receiving the same cached result.
func TestResultSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow; skipped with -short")
	}
	r := NewParallelRunner(0.05, 8)
	b, err := workload.ByName("namd")
	if err != nil {
		t.Fatal(err)
	}

	const callers = 16
	results := make([]interface{}, callers)
	errs := make([]error, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait() // maximize overlap
			res, err := r.Result(context.Background(), b, KindFullPower)
			results[i], errs[i] = res, err
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result object", i)
		}
	}
	if n := r.Simulations(); n != 1 {
		t.Fatalf("%d concurrent Result calls ran %d simulations, want 1", callers, n)
	}
}

// TestResultGoldenSerialVsParallel checks the parallel runner computes
// exactly the serial runner's results: every Kind for one benchmark,
// launched concurrently on a parallel runner, must deep-equal the same
// runs done one at a time.
func TestResultGoldenSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow; skipped with -short")
	}
	b, err := workload.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}

	serial := NewParallelRunner(0.05, 1)
	golden := make(map[Kind]interface{}, len(allKinds))
	for _, k := range allKinds {
		res, err := serial.Result(context.Background(), b, k)
		if err != nil {
			t.Fatal(err)
		}
		golden[k] = res
	}

	par := NewParallelRunner(0.05, 8)
	var wg sync.WaitGroup
	got := make([]interface{}, len(allKinds))
	errs := make([]error, len(allKinds))
	for i, k := range allKinds {
		wg.Add(1)
		go func(i int, k Kind) {
			defer wg.Done()
			got[i], errs[i] = par.Result(context.Background(), b, k)
		}(i, k)
	}
	wg.Wait()

	for i, k := range allKinds {
		if errs[i] != nil {
			t.Fatalf("%s: %v", k, errs[i])
		}
		if !reflect.DeepEqual(got[i], golden[k]) {
			t.Errorf("%s: parallel result differs from serial", k)
		}
	}
	if n := par.Simulations(); n != uint64(len(allKinds)) {
		t.Errorf("parallel runner ran %d simulations, want %d", n, len(allKinds))
	}
}

// TestResultErrorNotCached verifies failed flights are dropped so a later
// call retries, preserving the serial cache-on-success semantics.
func TestResultErrorNotCached(t *testing.T) {
	r := NewParallelRunner(1, 2)
	b, err := workload.ByName("namd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Result(context.Background(), b, Kind("bogus")); err == nil {
		t.Fatal("bogus kind ran")
	}
	if _, err := r.Result(context.Background(), b, Kind("bogus")); err == nil {
		t.Fatal("bogus kind cached as a success")
	}
	if n := r.Simulations(); n != 0 {
		t.Fatalf("failed runs counted %d simulations", n)
	}
}
