package experiments

import (
	"context"
	"fmt"

	"powerchop/internal/arch"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/stats"
	"powerchop/internal/workload"
)

// PowerTrace renders the telemetry view of a PowerChop run: per-unit
// power fractions and IPC per HTB window, read back from the time-series
// store rather than from Result fields. It is both a figure — the
// per-window shape of PowerChop's gating decisions on gobmk — and an end
// to end exercise of the tsdb pipeline (ingest during the run, range
// query after).
func PowerTrace(ctx context.Context, r *Runner) (*TimeSeriesResult, error) {
	return PowerTraceBench(ctx, r, "gobmk")
}

// traceSeries queries one series' raw level into a labeled value list.
func traceSeries(ts *tsdb.Store, name, label string) (stats.Series, error) {
	res, err := ts.Query(tsdb.Query{Series: name})
	if err != nil {
		return stats.Series{}, err
	}
	s := stats.Series{Label: label}
	for _, p := range res.Points {
		s.Append(p.Value)
	}
	return s, nil
}

// PowerTraceBench is PowerTrace on a named benchmark.
func PowerTraceBench(ctx context.Context, r *Runner, bench string) (*TimeSeriesResult, error) {
	b, err := workload.ByName(bench)
	if err != nil {
		return nil, err
	}
	ts := tsdb.NewStore(tsdb.DefaultConfig())
	res, err := r.Telemetry(ctx, b, KindPowerChop, ts)
	if err != nil {
		return nil, err
	}

	var series []stats.Series
	for _, unit := range []string{arch.UnitVPU, arch.UnitBPU, arch.UnitMLC} {
		s, err := traceSeries(ts, tsdb.SeriesUnitFracPrefix+unit, "power-frac "+unit)
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	ipc, err := traceSeries(ts, tsdb.SeriesIPC, "IPC")
	if err != nil {
		return nil, err
	}
	series = append(series, ipc)

	return &TimeSeriesResult{
		Title:  fmt.Sprintf("Power trace: per-window unit power fractions under PowerChop on %s", bench),
		XLabel: "HTB windows (telemetry raw level)",
		Series: series,
		Remarks: []string{
			fmt.Sprintf("windows: %d; mean power-frac VPU %.3f, BPU %.3f, MLC %.3f",
				res.Windows,
				stats.Mean(series[0].Values), stats.Mean(series[1].Values), stats.Mean(series[2].Values)),
		},
	}, nil
}
