package experiments

import (
	"context"
	"strings"
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/workload"
)

// TestPowerTraceShape pins the figure's structure: one power-fraction
// series per managed unit plus IPC, each with one value per window, and
// fractions inside [0, 1].
func TestPowerTraceShape(t *testing.T) {
	r := runner(t)
	fig, err := PowerTrace(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want 4 (VPU/BPU/MLC fracs + IPC)", len(fig.Series))
	}
	for _, want := range []string{"power-frac VPU", "power-frac BPU", "power-frac MLC", "IPC"} {
		found := false
		for _, s := range fig.Series {
			if s.Label == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing series %q", want)
		}
	}
	n := len(fig.Series[0].Values)
	if n == 0 {
		t.Fatal("empty power-frac series")
	}
	for _, s := range fig.Series[:3] {
		if len(s.Values) != n {
			t.Errorf("series %s has %d values, want %d", s.Label, len(s.Values), n)
		}
		for i, v := range s.Values {
			if v < 0 || v > 1 {
				t.Fatalf("series %s value %d = %v outside [0,1]", s.Label, i, v)
			}
		}
	}
	if out := fig.Render(); !strings.Contains(out, "Power trace") {
		t.Errorf("render missing title:\n%s", out)
	}
}

// TestRunnerTelemetryPassive pins that a telemetry run returns the same
// measurements as the canonical cached run of the same key.
func TestRunnerTelemetryPassive(t *testing.T) {
	r := runner(t)
	b, err := workload.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.Result(context.Background(), b, KindPowerChop)
	if err != nil {
		t.Fatal(err)
	}
	ts := tsdb.NewStore(tsdb.DefaultConfig())
	teled, err := r.Telemetry(context.Background(), b, KindPowerChop, ts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != teled.Cycles || plain.GuestInsns != teled.GuestInsns {
		t.Errorf("telemetry perturbed the run: cycles %v vs %v, insns %d vs %d",
			plain.Cycles, teled.Cycles, plain.GuestInsns, teled.GuestInsns)
	}
	res, err := ts.Query(tsdb.Query{Series: tsdb.SeriesUnitFracPrefix + arch.UnitVPU})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.Points)) == 0 || uint64(len(res.Points)) > teled.Windows {
		t.Errorf("VPU frac points = %d, windows = %d", len(res.Points), teled.Windows)
	}
}
