package experiments

import (
	"context"
	"fmt"
	"strings"

	"powerchop/internal/sim"
	"powerchop/internal/stats"
	"powerchop/internal/textplot"
	"powerchop/internal/workload"
)

// QualityRow is one benchmark's Figure 8 entry.
type QualityRow struct {
	Benchmark string
	MeanFrac  float64 // mean same-signature translation distance / window
	MaxFrac   float64
	Phases    int
}

// QualityResult is Figure 8: phase-signature quality across all apps.
type QualityResult struct {
	Rows     []QualityRow
	MeanFrac float64
	// WorstAppFrac is the largest per-app mean distance (the paper's
	// "never exceeds 6.8%" number).
	WorstAppFrac float64
}

// Render draws the per-app distances.
func (q *QualityResult) Render() string {
	rows := make([]textplot.Row, len(q.Rows))
	for i, r := range q.Rows {
		rows[i] = textplot.Row{Label: r.Benchmark, Value: r.MeanFrac * 100}
	}
	var b strings.Builder
	b.WriteString(textplot.BarChart(
		"Figure 8: mean translation distance between same-signature windows (% of window)",
		rows, 40, "%.2f%%"))
	fmt.Fprintf(&b, "  average %.1f%% of translations differ (paper: 2.8%%); worst app %.1f%% (paper: 6.8%%)\n",
		q.MeanFrac*100, q.WorstAppFrac*100)
	return b.String()
}

// Figure8 measures phase-identification quality over every benchmark's
// PowerChop run (Section V-B).
func Figure8(ctx context.Context, r *Runner) (*QualityResult, error) {
	out := &QualityResult{}
	var means []float64
	for _, b := range workload.All() {
		res, err := r.Result(ctx, b, KindPowerChop)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, QualityRow{
			Benchmark: b.Name,
			MeanFrac:  res.QualityMeanFrac,
			MaxFrac:   res.QualityMaxFrac,
			Phases:    res.QualityPhases,
		})
		means = append(means, res.QualityMeanFrac)
		if res.QualityMeanFrac > out.WorstAppFrac {
			out.WorstAppFrac = res.QualityMeanFrac
		}
	}
	out.MeanFrac = stats.Mean(means)
	return out, nil
}

// ActivityRow is one benchmark's unit-gating summary.
type ActivityRow struct {
	Benchmark string
	VPUGated  float64 // fraction of cycles the VPU is gated off
	BPUGated  float64
	MLCGated  float64 // any way-gating
	MLCOneWay float64 // one-way residency
	MLCHalf   float64
}

// ActivityResult is Figures 9/10: unit activity under PowerChop.
type ActivityResult struct {
	Title string
	Rows  []ActivityRow
}

// Render draws grouped bars per unit.
func (a *ActivityResult) Render() string {
	rows := make([]textplot.GroupedRow, len(a.Rows))
	for i, r := range a.Rows {
		rows[i] = textplot.GroupedRow{
			Label:  r.Benchmark,
			Values: []float64{r.VPUGated * 100, r.BPUGated * 100, r.MLCGated * 100},
		}
	}
	return textplot.GroupedChart(a.Title+" (% of cycles gated)",
		[]string{"VPU", "BPU", "MLC"}, rows, 40, "%.0f%%")
}

func activity(ctx context.Context, r *Runner, title string, bs []workload.Benchmark) (*ActivityResult, error) {
	out := &ActivityResult{Title: title}
	for _, b := range bs {
		res, err := r.Result(ctx, b, KindPowerChop)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ActivityRow{
			Benchmark: b.Name,
			VPUGated:  res.VPU.GatedFrac,
			BPUGated:  res.BPU.GatedFrac,
			MLCGated:  res.MLC.GatedFrac,
			MLCOneWay: res.MLC.OneWayFrac,
			MLCHalf:   res.MLC.HalfFrac,
		})
	}
	return out, nil
}

// Figure9 reproduces unit activity on the mobile design (Figure 9).
func Figure9(ctx context.Context, r *Runner) (*ActivityResult, error) {
	return activity(ctx, r, "Figure 9: unit gating activity, mobile processor (PowerChop)", workload.MobileSuite())
}

// Figure10 reproduces unit activity on the server design (Figure 10).
func Figure10(ctx context.Context, r *Runner) (*ActivityResult, error) {
	return activity(ctx, r, "Figure 10: unit gating activity, server processor (PowerChop)", workload.ServerSuite())
}

// SwitchRow is one benchmark's Figure 11 entry.
type SwitchRow struct {
	Benchmark string
	VPU       float64 // gating transitions per million cycles
	BPU       float64
	MLC       float64
}

// SwitchResult is Figure 11: policy-change frequency.
type SwitchResult struct {
	Rows   []SwitchRow
	AvgVPU float64
	AvgBPU float64
	AvgMLC float64
}

// Render draws grouped switch-rate bars.
func (s *SwitchResult) Render() string {
	rows := make([]textplot.GroupedRow, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = textplot.GroupedRow{Label: r.Benchmark, Values: []float64{r.VPU, r.BPU, r.MLC}}
	}
	var b strings.Builder
	b.WriteString(textplot.GroupedChart(
		"Figure 11: unit power-state changes per million cycles (PowerChop)",
		[]string{"VPU", "BPU", "MLC"}, rows, 40, "%.2f"))
	fmt.Fprintf(&b, "  averages: VPU %.2f, BPU %.2f, MLC %.2f per Mcycle (paper: <10, <50, <5)\n",
		s.AvgVPU, s.AvgBPU, s.AvgMLC)
	return b.String()
}

// Figure11 measures how often PowerChop's policies change unit power
// states (Section V-C).
func Figure11(ctx context.Context, r *Runner) (*SwitchResult, error) {
	out := &SwitchResult{}
	var v, p, m []float64
	for _, b := range workload.All() {
		res, err := r.Result(ctx, b, KindPowerChop)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, SwitchRow{
			Benchmark: b.Name,
			VPU:       res.VPU.SwitchesPerM,
			BPU:       res.BPU.SwitchesPerM,
			MLC:       res.MLC.SwitchesPerM,
		})
		v = append(v, res.VPU.SwitchesPerM)
		p = append(p, res.BPU.SwitchesPerM)
		m = append(m, res.MLC.SwitchesPerM)
	}
	out.AvgVPU, out.AvgBPU, out.AvgMLC = stats.Mean(v), stats.Mean(p), stats.Mean(m)
	return out, nil
}

// perUnitGated extracts one unit's gated fraction from a result.
func perUnitGated(res *sim.Result, unit string) float64 {
	switch unit {
	case "VPU":
		return res.VPU.GatedFrac
	case "BPU":
		return res.BPU.GatedFrac
	default:
		return res.MLC.GatedFrac
	}
}
