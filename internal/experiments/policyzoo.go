package experiments

import (
	"context"
	"fmt"
	"strings"

	"powerchop/internal/stats"
	"powerchop/internal/textplot"
	"powerchop/internal/workload"
)

// ZooPolicies are the registered policies the zoo comparison ranks,
// each at its default parameters, against the full-power baseline.
// full-power and min-power are omitted: the former is the baseline
// itself, the latter saturates both axes and drowns the chart.
var ZooPolicies = []string{"powerchop", "energy-min", "timeout", "darkgates", "agilewatts"}

// ZooCell is one (benchmark, policy) point of the comparison.
type ZooCell struct {
	Policy string
	// EnergySaved is the total-energy reduction vs full power.
	EnergySaved float64
	// Slowdown is the cycle-count increase vs full power.
	Slowdown float64
}

// ZooRow is one benchmark's row across every zoo policy.
type ZooRow struct {
	Benchmark string
	Suite     string
	Cells     []ZooCell // in ZooPolicies order
}

// ZooResult is the policy-comparison figure: energy saved and slowdown
// per policy per benchmark, with per-policy averages.
type ZooResult struct {
	Policies []string
	Rows     []ZooRow
	// AvgEnergySaved and AvgSlowdown average each policy's columns
	// across benchmarks, in Policies order.
	AvgEnergySaved []float64
	AvgSlowdown    []float64
}

// Render draws the two grouped charts plus the per-policy summary.
func (z *ZooResult) Render() string {
	energy := make([]textplot.GroupedRow, len(z.Rows))
	slow := make([]textplot.GroupedRow, len(z.Rows))
	for i, r := range z.Rows {
		er := textplot.GroupedRow{Label: r.Benchmark}
		sr := textplot.GroupedRow{Label: r.Benchmark}
		for _, c := range r.Cells {
			er.Values = append(er.Values, c.EnergySaved*100)
			sr.Values = append(sr.Values, c.Slowdown*100)
		}
		energy[i], slow[i] = er, sr
	}
	var b strings.Builder
	b.WriteString(textplot.GroupedChart(
		"Policy zoo: total energy saved vs full power (%)",
		z.Policies, energy, 40, "%.1f%%"))
	b.WriteString(textplot.GroupedChart(
		"Policy zoo: slowdown vs full power (%)",
		z.Policies, slow, 40, "%.1f%%"))
	b.WriteString("  policy averages (energy saved / slowdown):")
	for i, p := range z.Policies {
		fmt.Fprintf(&b, " %s %.1f%%/%.1f%%", p, z.AvgEnergySaved[i]*100, z.AvgSlowdown[i]*100)
	}
	b.WriteString("\n")
	return b.String()
}

// PolicyZoo runs every zoo policy at default parameters across every
// benchmark and compares each against the shared full-power baseline.
// Each benchmark's baseline and policy lanes go through one ResultBatch
// call, so cold renders drive all six configurations from a single
// instruction walk; results, cache entries and singleflight keys are
// identical to the per-run path.
func PolicyZoo(ctx context.Context, r *Runner) (*ZooResult, error) {
	out := &ZooResult{Policies: ZooPolicies}
	perPolicyEnergy := make([][]float64, len(ZooPolicies))
	perPolicySlow := make([][]float64, len(ZooPolicies))
	lanes := make([]BatchRun, 0, len(ZooPolicies)+1)
	lanes = append(lanes, BatchRun{Kind: KindFullPower})
	for _, name := range ZooPolicies {
		lanes = append(lanes, BatchRun{Policy: name})
	}
	for _, b := range workload.All() {
		results, err := r.ResultBatch(ctx, b, lanes)
		if err != nil {
			return nil, err
		}
		full := results[0]
		row := ZooRow{Benchmark: b.Name, Suite: b.Suite}
		for i, name := range ZooPolicies {
			res := results[i+1]
			cell := ZooCell{
				Policy:      name,
				EnergySaved: 1 - res.Power.TotalEnergyJ()/full.Power.TotalEnergyJ(),
				Slowdown:    res.Cycles/full.Cycles - 1,
			}
			row.Cells = append(row.Cells, cell)
			perPolicyEnergy[i] = append(perPolicyEnergy[i], cell.EnergySaved)
			perPolicySlow[i] = append(perPolicySlow[i], cell.Slowdown)
		}
		out.Rows = append(out.Rows, row)
	}
	for i := range ZooPolicies {
		out.AvgEnergySaved = append(out.AvgEnergySaved, stats.Mean(perPolicyEnergy[i]))
		out.AvgSlowdown = append(out.AvgSlowdown, stats.Mean(perPolicySlow[i]))
	}
	return out, nil
}
