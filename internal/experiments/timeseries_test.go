package experiments

import (
	"context"
	"strings"
	"testing"

	"powerchop/internal/stats"
)

func TestTimeSeriesResultRender(t *testing.T) {
	ts := &TimeSeriesResult{
		Title:  "Figure 1: vector operation intensity",
		XLabel: "20000-instruction intervals",
		Series: []stats.Series{
			{Label: "vector-ops", Values: []float64{0, 5, 40, 3, 0, 0, 80, 2}},
		},
		Remarks: []string{"intervals with zero vector ops: 3/8"},
	}
	out := ts.Render()
	for _, want := range []string{
		"Figure 1", "x: 20000-instruction intervals", "vector-ops",
		"[0 .. 80]", "intervals with zero vector ops: 3/8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTimeSeriesRenderEmptySeries(t *testing.T) {
	ts := &TimeSeriesResult{Title: "empty", XLabel: "x"}
	if out := ts.Render(); !strings.Contains(out, "empty") {
		t.Errorf("render = %q", out)
	}
}

// TestFigure2SeriesAligned pins the comparison's structure: both BPU
// series sample the same execution, so they must be non-empty and of
// similar length (the run lengths differ only by pipeline effects).
func TestFigure2SeriesAligned(t *testing.T) {
	r := runner(t)
	fig, err := Figure2(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2 (large and small BPU)", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Values) == 0 {
			t.Errorf("series %s empty", s.Label)
		}
	}
}

// TestFigure3GapFavorsFullMLC pins the qualitative claim: the full MLC's
// mean IPC is at least the one-way configuration's.
func TestFigure3GapFavorsFullMLC(t *testing.T) {
	r := runner(t)
	fig, err := Figure3(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	full := stats.Mean(fig.Series[0].Values)
	one := stats.Mean(fig.Series[1].Values)
	if full < one {
		t.Errorf("full MLC IPC %v below one-way %v", full, one)
	}
}
