package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestShardResultRender(t *testing.T) {
	s := &ShardResult{
		Rows: []ShardRow{
			{Benchmark: "gobmk", Zero: 0.5, OneToFour: 0.3, UpTo20: 0.15, Above: 0.05},
		},
	}
	out := s.Render()
	for _, want := range []string{"Figure 15", "gobmk", "50.0%", "30.0%", "15.0%", "5.0%", "V=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTimeoutResultRender(t *testing.T) {
	r := &TimeoutResult{
		Rows: []TimeoutRow{
			{Benchmark: "namd", PowerChop: 0.95, Timeout: 0.1},
		},
		Wins:         1,
		DramaticWins: []string{"namd"},
	}
	out := r.Render()
	for _, want := range []string{"Figure 16", "namd", "chop", "t/o", "1/1", "dramatic wins: namd"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPerUnitResultRender(t *testing.T) {
	p := &PerUnitResult{
		Rows: []PerUnitRow{
			{Benchmark: "gcc", Unit: "VPU", Gated: 0.8, Slowdown: 0.012},
		},
	}
	out := p.Render()
	for _, want := range []string{"Per-unit isolation", "gcc", "VPU", "80.0%", "1.20%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestFigure15FractionsSum pins the shard histogram's invariant: each
// app's four bucket fractions partition the shards.
func TestFigure15FractionsSum(t *testing.T) {
	r := runner(t)
	fig, err := Figure15(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range fig.Rows {
		sum := row.Zero + row.OneToFour + row.UpTo20 + row.Above
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: bucket fractions sum to %v", row.Benchmark, sum)
		}
	}
}

// TestFigure16WinAccounting pins the derived fields against the rows.
func TestFigure16WinAccounting(t *testing.T) {
	r := runner(t)
	fig, err := Figure16(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	dramatic := map[string]bool{}
	for _, row := range fig.Rows {
		if row.PowerChop >= row.Timeout-0.08 {
			wins++
		}
		if row.PowerChop >= row.Timeout+0.5 {
			dramatic[row.Benchmark] = true
		}
	}
	if wins != fig.Wins {
		t.Errorf("wins = %d, rows say %d", fig.Wins, wins)
	}
	if len(dramatic) != len(fig.DramaticWins) {
		t.Errorf("dramatic wins = %v, rows say %v", fig.DramaticWins, dramatic)
	}
}
