package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"powerchop/internal/workload"
)

// TestResultBatchMatchesResult pins the runner's batched path to the
// solo path: every lane of a ResultBatch — kinds, policies, and a
// duplicate lane sharing a flight — must be byte-identical to the
// corresponding Result/PolicyResult from an independent runner, and the
// duplicate must not cost an extra simulation.
func TestResultBatchMatchesResult(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow; skipped with -short")
	}
	b, err := workload.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lanes := []BatchRun{
		{Kind: KindFullPower},
		{Policy: "powerchop"},
		{Policy: "timeout"},
		{Kind: KindFullPower}, // duplicate: must await lane 0's flight
	}

	batchRunner := NewRunner(0.05)
	results, err := batchRunner.ResultBatch(ctx, b, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(lanes) {
		t.Fatalf("got %d results for %d lanes", len(results), len(lanes))
	}
	if n := batchRunner.Simulations(); n != 3 {
		t.Errorf("batch ran %d simulations, want 3 (duplicate lane deduped)", n)
	}

	soloRunner := NewRunner(0.05)
	solo := make([]any, len(lanes))
	for i, lane := range lanes {
		if lane.Policy != "" {
			solo[i], err = soloRunner.PolicyResult(ctx, b, lane.Policy, lane.Params)
		} else {
			solo[i], err = soloRunner.Result(ctx, b, lane.Kind)
		}
		if err != nil {
			t.Fatalf("lane %d solo: %v", i, err)
		}
	}
	for i := range lanes {
		want, err := json.Marshal(solo[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(results[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Errorf("lane %d: batched result differs from solo", i)
		}
	}
	if results[0] != results[3] {
		t.Error("duplicate lanes resolved to different results")
	}

	// A second batch is served entirely by singleflight memory: no new
	// simulations.
	again, err := batchRunner.ResultBatch(ctx, b, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if n := batchRunner.Simulations(); n != 3 {
		t.Errorf("warm batch re-simulated: %d simulations", n)
	}
	for i := range lanes {
		if again[i] != results[i] {
			t.Errorf("lane %d: warm batch returned a different result", i)
		}
	}

	// An unknown policy fails the whole call before any work.
	if _, err := batchRunner.ResultBatch(ctx, b, []BatchRun{{Policy: "no-such"}}); err == nil {
		t.Error("unknown policy lane accepted")
	}
}

// TestResultBatchSolo pins Batch=1 (batching disabled) to the same
// results via the per-lane solo fallback.
func TestResultBatchSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow; skipped with -short")
	}
	b, err := workload.ByName("libquantum")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lanes := []BatchRun{{Kind: KindFullPower}, {Policy: "timeout"}}

	batched := NewRunner(0.05)
	soloed := NewRunner(0.05)
	soloed.Batch = 1

	br, err := batched.ResultBatch(ctx, b, lanes)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := soloed.ResultBatch(ctx, b, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lanes {
		want, err := json.Marshal(br[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(sr[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(want) != string(got) {
			t.Errorf("lane %d: Batch=1 result differs from batched", i)
		}
	}
}
