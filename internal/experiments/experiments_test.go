package experiments

import (
	"context"
	"strings"
	"sync"
	"testing"

	"powerchop/internal/obs"
	"powerchop/internal/workload"
)

// Shared reduced-scale runner: the experiment tests verify structure and
// qualitative shape, not full-scale magnitudes.
var (
	testRunnerOnce sync.Once
	testRunner     *Runner
)

func runner(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment runs are slow; skipped with -short")
	}
	testRunnerOnce.Do(func() { testRunner = NewRunner(0.15) })
	return testRunner
}

func TestManagerKinds(t *testing.T) {
	for _, k := range []Kind{
		KindFullPower, KindPowerChop, KindMinPower, KindTimeout,
		KindSmallBPU, KindMLCOne, KindChopVPU, KindChopBPU, KindChopMLC,
	} {
		m, err := manager(k)
		if err != nil || m == nil {
			t.Errorf("manager(%s) = %v, %v", k, m, err)
		}
	}
	if _, err := manager(Kind("bogus")); err == nil {
		t.Error("bogus kind accepted")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := runner(t)
	b, err := workload.ByName("namd")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := r.Result(context.Background(), b, KindFullPower)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.Result(context.Background(), b, KindFullPower)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("runner did not cache")
	}
}

func TestFigure1VectorIntensityVaries(t *testing.T) {
	r := runner(t)
	fig, err := Figure1(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	vec := fig.Series[0].Values
	if len(vec) < 10 {
		t.Fatalf("only %d samples", len(vec))
	}
	lo, hi := vec[0], vec[0]
	for _, v := range vec {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		t.Fatal("gobmk vector intensity does not vary")
	}
	if !strings.Contains(fig.Render(), "Figure 1") {
		t.Fatal("render missing title")
	}
}

func TestFigure2LargeBPUWins(t *testing.T) {
	r := runner(t)
	fig, err := Figure2(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
	large := meanOf(fig.Series[0].Values)
	small := meanOf(fig.Series[1].Values)
	if large <= small {
		t.Fatalf("large BPU IPC %.3f not above small %.3f", large, small)
	}
}

func TestFigure3FullMLCWins(t *testing.T) {
	r := runner(t)
	fig, err := Figure3(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	meanOf := func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
	full := meanOf(fig.Series[0].Values)
	one := meanOf(fig.Series[1].Values)
	if full <= one {
		t.Fatalf("full MLC IPC %.3f not above 1-way %.3f", full, one)
	}
}

func TestTableIRender(t *testing.T) {
	out := TableI().Render()
	for _, want := range []string{"1024KB", "2048KB", "4-wide", "2-wide", "local only"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFigure8Quality(t *testing.T) {
	r := runner(t)
	fig, err := Figure8(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 29 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// Shape claim: same-signature windows execute highly similar code.
	if fig.MeanFrac > 0.10 {
		t.Fatalf("mean signature distance %.3f too high", fig.MeanFrac)
	}
	if !strings.Contains(fig.Render(), "Figure 8") {
		t.Fatal("render missing title")
	}
}

func TestFigure9MobileShape(t *testing.T) {
	r := runner(t)
	fig, err := Figure9(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 8 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	for _, row := range fig.Rows {
		if row.VPUGated < 0.6 {
			t.Errorf("%s: mobile VPU gated only %.2f (paper ~90%%)", row.Benchmark, row.VPUGated)
		}
	}
}

func TestFigure10ServerShape(t *testing.T) {
	r := runner(t)
	fig, err := Figure10(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 21 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	byName := map[string]ActivityRow{}
	for _, row := range fig.Rows {
		byName[row.Benchmark] = row
	}
	// Paper-named shapes: namd and dedup gate the VPU heavily; soplex and
	// sphinx keep it mostly on; lbm and hmmer gate the BPU.
	if byName["namd"].VPUGated < 0.7 || byName["dedup"].VPUGated < 0.7 {
		t.Errorf("namd/dedup VPU gating too low: %.2f / %.2f",
			byName["namd"].VPUGated, byName["dedup"].VPUGated)
	}
	if byName["soplex"].VPUGated > 0.4 || byName["sphinx3"].VPUGated > 0.4 {
		t.Errorf("soplex/sphinx3 VPU gated too much: %.2f / %.2f",
			byName["soplex"].VPUGated, byName["sphinx3"].VPUGated)
	}
	if byName["lbm"].BPUGated < 0.5 || byName["hmmer"].BPUGated < 0.5 {
		t.Errorf("lbm/hmmer BPU gating too low: %.2f / %.2f",
			byName["lbm"].BPUGated, byName["hmmer"].BPUGated)
	}
	// MLC one-way heavy hitters.
	for _, name := range []string{"milc", "libquantum", "streamcluster"} {
		if byName[name].MLCOneWay < 0.4 {
			t.Errorf("%s MLC one-way %.2f, paper reports >40%%", name, byName[name].MLCOneWay)
		}
	}
}

func TestFigure11LowSwitchRates(t *testing.T) {
	r := runner(t)
	fig, err := Figure11(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	// Paper bounds: <10 VPU, <50 BPU, <5 MLC per million cycles on
	// average. Short test runs inflate rates slightly; allow 2x.
	if fig.AvgVPU > 20 || fig.AvgBPU > 100 || fig.AvgMLC > 10 {
		t.Fatalf("switch rates too high: VPU %.1f BPU %.1f MLC %.1f",
			fig.AvgVPU, fig.AvgBPU, fig.AvgMLC)
	}
}

func TestFigure12PerfShape(t *testing.T) {
	r := runner(t)
	fig, err := Figure12(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 29 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// PowerChop stays near full performance; min-power loses much more.
	if fig.AvgSlowdown > 0.06 {
		t.Fatalf("PowerChop average slowdown %.3f too high", fig.AvgSlowdown)
	}
	if fig.AvgMinLoss < 5*fig.AvgSlowdown {
		t.Fatalf("min-power loss %.3f not clearly above PowerChop %.3f",
			fig.AvgMinLoss, fig.AvgSlowdown)
	}
	for _, row := range fig.Rows {
		if row.MinPower > row.PowerChop+0.01 {
			t.Errorf("%s: min-power outperforms PowerChop (%.3f vs %.3f)",
				row.Benchmark, row.MinPower, row.PowerChop)
		}
	}
}

func TestFigure13And14PowerShape(t *testing.T) {
	r := runner(t)
	fig, err := PowerReductions(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	// Every suite saves power; mobile saves the most (its MLC dominates
	// core area), as in the paper.
	for _, s := range workload.Suites() {
		if fig.AvgPower[s] <= 0 {
			t.Errorf("suite %s: power reduction %.3f", s, fig.AvgPower[s])
		}
		if fig.AvgLeakage[s] < fig.AvgPower[s]*0.8 {
			t.Errorf("suite %s: leakage reduction %.3f below power reduction %.3f",
				s, fig.AvgLeakage[s], fig.AvgPower[s])
		}
	}
	if fig.AvgPower[workload.MobileBench] <= fig.AvgPower[workload.SPECFP] {
		t.Error("mobile power reduction should exceed SPEC-FP")
	}
	if !strings.Contains(fig.RenderFigure13(), "Figure 13") ||
		!strings.Contains(fig.RenderFigure14(), "Figure 14") {
		t.Error("render titles missing")
	}
}

func TestFigure15ShardShape(t *testing.T) {
	r := runner(t)
	fig, err := Figure15(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ShardRow{}
	for _, row := range fig.Rows {
		byName[row.Benchmark] = row
	}
	// namd's defining property: most shards carry a small nonzero number
	// of vector ops.
	if byName["namd"].OneToFour < 0.3 {
		t.Errorf("namd 0<V<=4 shards = %.2f, want many", byName["namd"].OneToFour)
	}
	// milc is vector-dense.
	if byName["milc"].Above < 0.5 {
		t.Errorf("milc V>20 shards = %.2f, want most", byName["milc"].Above)
	}
}

func TestFigure16PowerChopBeatsTimeout(t *testing.T) {
	r := runner(t)
	fig, err := Figure16(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Wins < len(fig.Rows)-2 {
		t.Fatalf("PowerChop won only %d/%d apps", fig.Wins, len(fig.Rows))
	}
	dramatic := map[string]bool{}
	for _, n := range fig.DramaticWins {
		dramatic[n] = true
	}
	for _, name := range []string{"namd", "perlbench", "h264ref"} {
		if !dramatic[name] {
			t.Errorf("%s should be a dramatic PowerChop win (paper names it)", name)
		}
	}
}

func TestSoftwareCostsSmall(t *testing.T) {
	r := runner(t)
	costs, err := SoftwareCosts(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: PVT misses are rare and CDE time is a tiny fraction. Short
	// runs inflate the transient, so bound loosely.
	if costs.AvgMissPerTranslation > 0.01 {
		t.Fatalf("PVT miss rate %.5f too high", costs.AvgMissPerTranslation)
	}
	if costs.AvgOverheadFrac > 0.05 {
		t.Fatalf("CDE overhead %.4f too high", costs.AvgOverheadFrac)
	}
}

func TestHardwareCostsRender(t *testing.T) {
	out := HardwareCosts().Render()
	if !strings.Contains(out, "264") || !strings.Contains(out, "0.027") {
		t.Fatalf("hardware costs = %q", out)
	}
}

func TestPerUnitStudy(t *testing.T) {
	r := runner(t)
	b, err := workload.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	res, err := PerUnit(context.Background(), r, []workload.Benchmark{b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Slowdown > 0.10 {
			t.Errorf("%s/%s: per-unit slowdown %.3f", row.Benchmark, row.Unit, row.Slowdown)
		}
	}
	if !strings.Contains(res.Render(), "gobmk") {
		t.Fatal("render missing benchmark")
	}
}

func TestRunnerTracer(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow; skipped with -short")
	}
	// A dedicated small runner: the shared one may already have cached
	// results, which would bypass the tracer.
	r := NewRunner(0.05)
	ring := obs.NewRing(1 << 14)
	r.Tracer = ring
	b, err := workload.ByName("namd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Result(context.Background(), b, KindPowerChop); err != nil {
		t.Fatal(err)
	}
	if ring.Total() == 0 {
		t.Fatal("runner tracer saw no events")
	}
	windows := 0
	for _, e := range ring.Events() {
		if e.Kind == obs.KindWindowClose {
			windows++
		}
	}
	if windows == 0 {
		t.Error("no window-close events through runner tracer")
	}
}
