package experiments

import (
	"context"
	"fmt"
	"strings"

	"powerchop/internal/textplot"
	"powerchop/internal/workload"
)

// ShardRow is one benchmark's Figure 15 entry: the distribution of vector
// ops across 1000-instruction execution shards.
type ShardRow struct {
	Benchmark string
	Zero      float64 // fraction of shards with V = 0
	OneToFour float64 // 0 < V <= 4
	UpTo20    float64 // 4 < V <= 20
	Above     float64 // V > 20
}

// ShardResult is Figure 15.
type ShardResult struct {
	Rows []ShardRow
}

// Render draws the shard distribution per app.
func (s *ShardResult) Render() string {
	header := []string{"benchmark", "V=0", "0<V<=4", "4<V<=20", "V>20"}
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{
			r.Benchmark,
			fmt.Sprintf("%.1f%%", r.Zero*100),
			fmt.Sprintf("%.1f%%", r.OneToFour*100),
			fmt.Sprintf("%.1f%%", r.UpTo20*100),
			fmt.Sprintf("%.1f%%", r.Above*100),
		}
	}
	var b strings.Builder
	b.WriteString("Figure 15: vector-op prevalence (V) among 1000-instruction shards\n")
	b.WriteString(textplot.Table(header, rows))
	b.WriteString("  shards with small-but-nonzero V defeat idle timeouts but not PowerChop\n")
	return b.String()
}

// Figure15 measures how vector operations distribute across execution
// shards (Section V-E's motivation for criticality over idleness).
func Figure15(ctx context.Context, r *Runner) (*ShardResult, error) {
	out := &ShardResult{}
	for _, b := range workload.All() {
		res, err := r.Result(ctx, b, KindFullPower)
		if err != nil {
			return nil, err
		}
		total := float64(res.Shards.Total())
		if total == 0 {
			total = 1
		}
		out.Rows = append(out.Rows, ShardRow{
			Benchmark: b.Name,
			Zero:      float64(res.Shards.Zero) / total,
			OneToFour: float64(res.Shards.OneToFour) / total,
			UpTo20:    float64(res.Shards.UpToTwenty) / total,
			Above:     float64(res.Shards.Above) / total,
		})
	}
	return out, nil
}

// TimeoutRow is one benchmark's Figure 16 entry.
type TimeoutRow struct {
	Benchmark string
	PowerChop float64 // fraction of cycles the VPU is gated off
	Timeout   float64
}

// TimeoutResult is Figure 16: PowerChop vs the 20K-cycle idle timeout for
// VPU gating.
type TimeoutResult struct {
	Rows []TimeoutRow
	// Wins counts apps where PowerChop gates at least as much as timeout.
	Wins int
	// DramaticWins lists apps where PowerChop gates >=50 points more.
	DramaticWins []string
}

// Render draws the comparison.
func (t *TimeoutResult) Render() string {
	rows := make([]textplot.GroupedRow, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = textplot.GroupedRow{
			Label:  r.Benchmark,
			Values: []float64{r.PowerChop * 100, r.Timeout * 100},
		}
	}
	var b strings.Builder
	b.WriteString(textplot.GroupedChart(
		"Figure 16: VPU gated-off cycles, PowerChop vs 20K-cycle timeout",
		[]string{"chop", "t/o"}, rows, 40, "%.0f%%"))
	fmt.Fprintf(&b, "  PowerChop gates at least as much on %d/%d apps; dramatic wins: %s (paper names namd, perlbench, h264)\n",
		t.Wins, len(t.Rows), strings.Join(t.DramaticWins, ", "))
	return b.String()
}

// Figure16 compares PowerChop's VPU gating against the tuned hardware
// timeout baseline (Section V-E). PowerChop manages only the VPU here so
// the comparison isolates that unit, as the paper's study does.
func Figure16(ctx context.Context, r *Runner) (*TimeoutResult, error) {
	out := &TimeoutResult{}
	for _, b := range workload.All() {
		chop, err := r.Result(ctx, b, KindChopVPU)
		if err != nil {
			return nil, err
		}
		timeout, err := r.Result(ctx, b, KindTimeout)
		if err != nil {
			return nil, err
		}
		row := TimeoutRow{
			Benchmark: b.Name,
			PowerChop: chop.VPU.GatedFrac,
			Timeout:   timeout.VPU.GatedFrac,
		}
		out.Rows = append(out.Rows, row)
		// "At least as much" up to the profiling transient: PowerChop
		// briefly powers the VPU during measurement windows, which on
		// vector-free apps leaves it a few points behind a timeout that
		// never has a reason to wake the unit.
		if row.PowerChop >= row.Timeout-0.08 {
			out.Wins++
		}
		if row.PowerChop >= row.Timeout+0.5 {
			out.DramaticWins = append(out.DramaticWins, b.Name)
		}
	}
	return out, nil
}

// PerUnitRow is a per-unit isolation study entry (Section V-C).
type PerUnitRow struct {
	Benchmark string
	Unit      string
	Gated     float64
	Slowdown  float64
}

// PerUnitResult summarizes the per-unit isolation study: PowerChop
// managing a single unit with the others fully powered.
type PerUnitResult struct {
	Rows []PerUnitRow
}

// Render draws the isolation results.
func (p *PerUnitResult) Render() string {
	header := []string{"benchmark", "unit", "gated", "slowdown"}
	rows := make([][]string, len(p.Rows))
	for i, r := range p.Rows {
		rows[i] = []string{
			r.Benchmark, r.Unit,
			fmt.Sprintf("%.1f%%", r.Gated*100),
			fmt.Sprintf("%.2f%%", r.Slowdown*100),
		}
	}
	return "Per-unit isolation study (Section V-C)\n" + textplot.Table(header, rows)
}

// PerUnit runs the per-unit isolation study for the given benchmarks.
func PerUnit(ctx context.Context, r *Runner, bs []workload.Benchmark) (*PerUnitResult, error) {
	out := &PerUnitResult{}
	kinds := []struct {
		kind Kind
		unit string
	}{
		{KindChopVPU, "VPU"},
		{KindChopBPU, "BPU"},
		{KindChopMLC, "MLC"},
	}
	for _, b := range bs {
		full, err := r.Result(ctx, b, KindFullPower)
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			res, err := r.Result(ctx, b, k.kind)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, PerUnitRow{
				Benchmark: b.Name,
				Unit:      k.unit,
				Gated:     perUnitGated(res, k.unit),
				Slowdown:  res.Cycles/full.Cycles - 1,
			})
		}
	}
	return out, nil
}
