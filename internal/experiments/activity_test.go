package experiments

import (
	"context"
	"strings"
	"testing"

	"powerchop/internal/sim"
)

func TestQualityResultRender(t *testing.T) {
	q := &QualityResult{
		Rows: []QualityRow{
			{Benchmark: "gobmk", MeanFrac: 0.028, MaxFrac: 0.06, Phases: 12},
			{Benchmark: "namd", MeanFrac: 0.01, MaxFrac: 0.02, Phases: 4},
		},
		MeanFrac:     0.019,
		WorstAppFrac: 0.028,
	}
	out := q.Render()
	for _, want := range []string{"Figure 8", "gobmk", "namd", "2.80%", "worst app 2.8%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestActivityResultRender(t *testing.T) {
	a := &ActivityResult{
		Title: "Figure 9: unit gating activity",
		Rows: []ActivityRow{
			{Benchmark: "msn", VPUGated: 0.9, BPUGated: 0.5, MLCGated: 0.7, MLCOneWay: 0.6, MLCHalf: 0.1},
		},
	}
	out := a.Render()
	for _, want := range []string{"Figure 9", "msn", "VPU", "BPU", "MLC", "90%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSwitchResultRender(t *testing.T) {
	s := &SwitchResult{
		Rows:   []SwitchRow{{Benchmark: "gcc", VPU: 1.5, BPU: 22.0, MLC: 0.4}},
		AvgVPU: 1.5, AvgBPU: 22.0, AvgMLC: 0.4,
	}
	out := s.Render()
	for _, want := range []string{"Figure 11", "gcc", "VPU 1.50", "BPU 22.00", "MLC 0.40"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPerUnitGated(t *testing.T) {
	res := &sim.Result{}
	res.VPU.GatedFrac = 0.1
	res.BPU.GatedFrac = 0.2
	res.MLC.GatedFrac = 0.3
	if got := perUnitGated(res, "VPU"); got != 0.1 {
		t.Errorf("VPU gated = %v", got)
	}
	if got := perUnitGated(res, "BPU"); got != 0.2 {
		t.Errorf("BPU gated = %v", got)
	}
	if got := perUnitGated(res, "MLC"); got != 0.3 {
		t.Errorf("MLC gated = %v", got)
	}
	if got := perUnitGated(res, "anything-else"); got != 0.3 {
		t.Errorf("default gated = %v, want MLC's", got)
	}
}

// TestFigure8RowsCoverAllApps pins the figure's structure: one row per
// benchmark, aggregate fields consistent with the rows.
func TestFigure8RowsCoverAllApps(t *testing.T) {
	r := runner(t)
	q, err := Figure8(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, row := range q.Rows {
		if row.MeanFrac > worst {
			worst = row.MeanFrac
		}
		if row.MeanFrac > row.MaxFrac {
			t.Errorf("%s: mean %v exceeds max %v", row.Benchmark, row.MeanFrac, row.MaxFrac)
		}
	}
	if worst != q.WorstAppFrac {
		t.Errorf("worst app %v, rows say %v", q.WorstAppFrac, worst)
	}
}
