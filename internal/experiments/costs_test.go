package experiments

import (
	"context"
	"strings"
	"testing"

	"powerchop/internal/power"
)

func TestTableIDesignPoints(t *testing.T) {
	ti := TableI()
	if ti.Server.Name != "server" || ti.Mobile.Name != "mobile" {
		t.Fatalf("design points = %s/%s", ti.Server.Name, ti.Mobile.Name)
	}
	if ti.Server.ClockHz <= ti.Mobile.ClockHz {
		t.Errorf("server clock %v not above mobile %v", ti.Server.ClockHz, ti.Mobile.ClockHz)
	}
	out := ti.Render()
	for _, want := range []string{
		"Table I", "Server (Nehalem-class)", "Mobile (Cortex-A9-class)",
		"3.0 GHz", "1.0 GHz", "SPEC CPU2006", "MobileBench",
		"-wide SIMD", "cyc/switch",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHardwareCostsMatchPowerModel(t *testing.T) {
	h := HardwareCosts()
	if h.PVTBytes != power.PVTBytes || h.HTBBytes != power.HTBBytes {
		t.Errorf("sizes = %d/%d, want %d/%d", h.PVTBytes, h.HTBBytes, power.PVTBytes, power.HTBBytes)
	}
	if h.HTBPowerW != power.HTBPowerW || h.HTBAreaMM2 != power.HTBAreaMM2 {
		t.Errorf("power/area = %v/%v, want %v/%v", h.HTBPowerW, h.HTBAreaMM2, power.HTBPowerW, power.HTBAreaMM2)
	}
	out := h.Render()
	for _, want := range []string{"Hardware costs", "PVT", "HTB"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSoftwareCostsRender(t *testing.T) {
	s := &SoftwareCostsResult{
		Rows: []SoftwareCostRow{
			{Benchmark: "gcc", MissesPerTranslation: 0.00017, OverheadFrac: 0.004},
		},
		AvgMissPerTranslation: 0.00017,
		AvgOverheadFrac:       0.004,
	}
	out := s.Render()
	for _, want := range []string{"Software costs", "gcc", "0.01700%", "0.400%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSoftwareCostsBounds pins the paper's qualitative claim at reduced
// scale: PVT misses are rare per translation and CDE time is a small
// fraction of run cycles.
func TestSoftwareCostsBounds(t *testing.T) {
	r := runner(t)
	s, err := SoftwareCosts(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range s.Rows {
		if row.MissesPerTranslation < 0 || row.MissesPerTranslation > 0.05 {
			t.Errorf("%s: %v misses/translation out of range", row.Benchmark, row.MissesPerTranslation)
		}
		if row.OverheadFrac < 0 || row.OverheadFrac > 0.05 {
			t.Errorf("%s: CDE overhead %v out of range", row.Benchmark, row.OverheadFrac)
		}
	}
}
