package experiments

import (
	"context"
	"sync"
	"testing"

	"powerchop/internal/workload"
)

// recordingSink captures every RunUpdate, safe for concurrent emission.
type recordingSink struct {
	mu      sync.Mutex
	updates []RunUpdate
}

func (s *recordingSink) RunUpdate(u RunUpdate) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.updates = append(s.updates, u)
}

func (s *recordingSink) all() []RunUpdate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RunUpdate(nil), s.updates...)
}

// TestRunnerProgressLifecycle drives one run and checks the sink sees the
// full queued → simulating → done sequence with sane counters, and that a
// deduplicated second call stays silent.
func TestRunnerProgressLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow; skipped with -short")
	}
	sink := &recordingSink{}
	r := NewParallelRunner(0.05, 2)
	r.Progress = sink
	b, err := workload.ByName("namd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Result(context.Background(), b, KindPowerChop)
	if err != nil {
		t.Fatal(err)
	}

	ups := sink.all()
	if len(ups) < 3 {
		t.Fatalf("only %d updates for a full lifecycle", len(ups))
	}
	if ups[0].State != RunQueued || ups[1].State != RunSimulating {
		t.Fatalf("lifecycle starts %v, %v", ups[0].State, ups[1].State)
	}
	last := ups[len(ups)-1]
	if last.State != RunDone || last.Elapsed <= 0 {
		t.Fatalf("final update = %+v", last)
	}
	if last.Cycles != res.Cycles || last.Windows != res.Windows {
		t.Fatalf("final update %+v does not match result (cycles %v windows %d)",
			last, res.Cycles, res.Windows)
	}
	for i, u := range ups {
		if u.Benchmark != "namd" || u.Kind != KindPowerChop {
			t.Fatalf("update %d for wrong run: %+v", i, u)
		}
		if u.State == RunSimulating && u.Translations > 0 && u.Total == 0 {
			t.Fatalf("update %d has translations without a budget: %+v", i, u)
		}
	}
	// In-flight updates advance monotonically.
	var cyc float64
	for _, u := range ups[:len(ups)-1] {
		if u.State == RunSimulating && u.Cycles > 0 {
			if u.Cycles < cyc {
				t.Fatalf("cycles regressed: %v after %v", u.Cycles, cyc)
			}
			cyc = u.Cycles
		}
	}

	// A cached call must not replay the lifecycle.
	before := len(sink.all())
	if _, err := r.Result(context.Background(), b, KindPowerChop); err != nil {
		t.Fatal(err)
	}
	if after := len(sink.all()); after != before {
		t.Fatalf("cached Result emitted %d extra updates", after-before)
	}
}

// TestRunnerProgressError checks a failing run reports RunError.
func TestRunnerProgressError(t *testing.T) {
	sink := &recordingSink{}
	r := NewParallelRunner(0.05, 1)
	r.Progress = sink
	bad := workload.Benchmark{Name: "broken"}
	if _, err := r.Result(context.Background(), bad, Kind("nonsense")); err == nil {
		t.Fatal("bogus kind succeeded")
	}
	ups := sink.all()
	if len(ups) == 0 {
		t.Fatal("no updates for failed run")
	}
	last := ups[len(ups)-1]
	if last.State != RunError || last.Err == nil {
		t.Fatalf("final update for failed run = %+v", last)
	}
}

// TestRunnerProgressDeterminism checks a progress-observed runner
// computes exactly the results of a silent one.
func TestRunnerProgressDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are slow; skipped with -short")
	}
	b, err := workload.ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	silent := NewParallelRunner(0.05, 1)
	want, err := silent.Result(context.Background(), b, KindPowerChop)
	if err != nil {
		t.Fatal(err)
	}
	observed := NewParallelRunner(0.05, 1)
	observed.Progress = &recordingSink{}
	got, err := observed.Result(context.Background(), b, KindPowerChop)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.GuestInsns != want.GuestInsns ||
		got.Power.AvgPowerW() != want.Power.AvgPowerW() {
		t.Fatalf("progress observation perturbed the run: cycles %v vs %v",
			got.Cycles, want.Cycles)
	}
}
