package experiments

import (
	"context"
	"fmt"
	"strings"

	"powerchop/internal/arch"
	"powerchop/internal/power"
	"powerchop/internal/stats"
	"powerchop/internal/textplot"
	"powerchop/internal/workload"
)

// TableIResult renders the architectural design points (Table I).
type TableIResult struct {
	Server arch.Design
	Mobile arch.Design
}

// TableI returns the two evaluated design points.
func TableI() *TableIResult {
	return &TableIResult{Server: arch.Server(), Mobile: arch.Mobile()}
}

// Render draws the Table I summary.
func (t *TableIResult) Render() string {
	kb := func(bytes int) string { return fmt.Sprintf("%dKB", bytes>>10) }
	row := func(name string, f func(arch.Design) string) []string {
		return []string{name, f(t.Server), f(t.Mobile)}
	}
	rows := [][]string{
		row("applications", func(d arch.Design) string {
			if d.Name == "server" {
				return "SPEC CPU2006, PARSEC"
			}
			return "MobileBench"
		}),
		row("clock", func(d arch.Design) string { return fmt.Sprintf("%.1f GHz", d.ClockHz/1e9) }),
		row("MLC baseline", func(d arch.Design) string {
			return fmt.Sprintf("%s, %d-way", kb(d.Mem.MLC.SizeBytes), d.Mem.MLC.Ways)
		}),
		row("MLC area", func(d arch.Design) string { return fmt.Sprintf("%.0f%% of core", d.PowerMLC.AreaFrac*100) }),
		row("MLC gated states", func(d arch.Design) string {
			half := d.Mem.MLC.SizeBytes / 2
			one := d.Mem.MLC.SizeBytes / d.Mem.MLC.Ways
			return fmt.Sprintf("%s %d-way or %s 1-way", kb(half), d.Mem.MLC.Ways/2, kb(one))
		}),
		row("MLC overheads", func(d arch.Design) string {
			return fmt.Sprintf("%.0f cyc/switch + WB + rewarm", d.GateStallMLC)
		}),
		row("VPU baseline", func(d arch.Design) string { return fmt.Sprintf("%d-wide SIMD", d.VPU.Width) }),
		row("VPU area", func(d arch.Design) string { return fmt.Sprintf("%.0f%% of core", d.PowerVPU.AreaFrac*100) }),
		row("VPU gated state", func(arch.Design) string { return "unit off, ops emulated by BT" }),
		row("VPU overheads", func(d arch.Design) string {
			return fmt.Sprintf("%.0f cyc/switch + %.0f cyc save/restore", d.GateStallVPU, d.VPU.SaveRestoreCycles)
		}),
		row("BPU baseline", func(d arch.Design) string {
			return fmt.Sprintf("loc/glob tourney, %dK-ent BTB, %dK-ent chooser",
				d.BPU.Large.BTBEntries>>10, d.BPU.Large.ChooserSize>>10)
		}),
		row("BPU area", func(d arch.Design) string { return fmt.Sprintf("%.0f%% of core", d.PowerBPU.AreaFrac*100) }),
		row("BPU gated state", func(d arch.Design) string {
			return fmt.Sprintf("local only, %d-entry BTB", d.BPU.SmallBTB)
		}),
		row("BPU overheads", func(d arch.Design) string {
			return fmt.Sprintf("%.0f cyc/switch + rewarm", d.GateStallBPU)
		}),
	}
	return "Table I: architectural design points\n" +
		textplot.Table([]string{"", "Server (Nehalem-class)", "Mobile (Cortex-A9-class)"}, rows)
}

// HardwareCostsResult reports the HTB/PVT hardware budget (Section IV-B4).
type HardwareCostsResult struct {
	PVTBytes   int
	HTBBytes   int
	HTBPowerW  float64
	HTBAreaMM2 float64
}

// HardwareCosts returns the added-hardware budget.
func HardwareCosts() *HardwareCostsResult {
	return &HardwareCostsResult{
		PVTBytes:   power.PVTBytes,
		HTBBytes:   power.HTBBytes,
		HTBPowerW:  power.HTBPowerW,
		HTBAreaMM2: power.HTBAreaMM2,
	}
}

// Render draws the hardware cost summary.
func (h *HardwareCostsResult) Render() string {
	return fmt.Sprintf(`Hardware costs (Section IV-B4)
  PVT: 16 entries, %d bytes (4x32-bit PCs + 4 policy bits per entry)
  HTB: 128 entries, %d bytes (32-bit ID + 32-bit counter per entry)
  HTB power %.3f W, area %.3f mm^2 (cacti, 32nm) - small vs. core budgets
`, h.PVTBytes, h.HTBBytes, h.HTBPowerW, h.HTBAreaMM2)
}

// SoftwareCostsResult reports the CDE/PVT-miss overhead (Section IV-C3).
type SoftwareCostsResult struct {
	Rows []SoftwareCostRow
	// AvgMissPerTranslation is the PVT misses per executed translation
	// (paper: 0.017% across SPEC).
	AvgMissPerTranslation float64
	// AvgOverheadFrac is the CDE handling time as a fraction of run
	// cycles (paper: <0.5%).
	AvgOverheadFrac float64
}

// SoftwareCostRow is one benchmark's software-cost entry.
type SoftwareCostRow struct {
	Benchmark            string
	MissesPerTranslation float64
	OverheadFrac         float64
}

// SoftwareCosts measures the PVT-miss interrupt rate and CDE time across
// the SPEC suites, as the paper reports.
func SoftwareCosts(ctx context.Context, r *Runner) (*SoftwareCostsResult, error) {
	out := &SoftwareCostsResult{}
	var misses, overheads []float64
	bs := append(workload.BySuite(workload.SPECInt), workload.BySuite(workload.SPECFP)...)
	for _, b := range bs {
		res, err := r.Result(ctx, b, KindPowerChop)
		if err != nil {
			return nil, err
		}
		translations := float64(res.BT.TranslatedExecs)
		if translations == 0 {
			translations = 1
		}
		row := SoftwareCostRow{
			Benchmark:            b.Name,
			MissesPerTranslation: float64(res.PVTMissInts) / translations,
			OverheadFrac:         res.CDECycles / res.Cycles,
		}
		out.Rows = append(out.Rows, row)
		misses = append(misses, row.MissesPerTranslation)
		overheads = append(overheads, row.OverheadFrac)
	}
	out.AvgMissPerTranslation = stats.Mean(misses)
	out.AvgOverheadFrac = stats.Mean(overheads)
	return out, nil
}

// Render draws the software cost table.
func (s *SoftwareCostsResult) Render() string {
	header := []string{"benchmark", "PVT misses/translation", "CDE cycles/run"}
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{
			r.Benchmark,
			fmt.Sprintf("%.5f%%", r.MissesPerTranslation*100),
			fmt.Sprintf("%.3f%%", r.OverheadFrac*100),
		}
	}
	var b strings.Builder
	b.WriteString("Software costs (Section IV-C3)\n")
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "  averages: %.5f%% of translations miss the PVT (paper: 0.017%%); CDE costs %.3f%% of cycles (paper: <0.5%%)\n",
		s.AvgMissPerTranslation*100, s.AvgOverheadFrac*100)
	return b.String()
}
