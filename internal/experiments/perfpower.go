package experiments

import (
	"context"
	"fmt"
	"strings"

	"powerchop/internal/stats"
	"powerchop/internal/textplot"
	"powerchop/internal/workload"
)

// PerfRow is one benchmark's Figure 12 entry: performance normalized to
// the full-power configuration.
type PerfRow struct {
	Benchmark string
	Suite     string
	PowerChop float64 // normalized performance (1 = full power)
	MinPower  float64
}

// PerfResult is Figure 12.
type PerfResult struct {
	Rows []PerfRow
	// AvgSlowdown is PowerChop's average performance loss (paper: 2.2%).
	AvgSlowdown float64
	// AvgMinLoss is the minimally-powered core's average loss (paper: 84%).
	AvgMinLoss float64
}

// Render draws normalized performance per app.
func (p *PerfResult) Render() string {
	rows := make([]textplot.GroupedRow, len(p.Rows))
	for i, r := range p.Rows {
		rows[i] = textplot.GroupedRow{
			Label:  r.Benchmark,
			Values: []float64{r.PowerChop, r.MinPower},
		}
	}
	var b strings.Builder
	b.WriteString(textplot.GroupedChart(
		"Figure 12: performance normalized to the full-power core",
		[]string{"chop", "min"}, rows, 40, "%.2f"))
	fmt.Fprintf(&b, "  PowerChop average slowdown %.1f%% (paper: 2.2%%); min-power average loss %.0f%% (paper: 84%%)\n",
		p.AvgSlowdown*100, p.AvgMinLoss*100)
	return b.String()
}

// Figure12 compares full-power, PowerChop-managed and minimally-powered
// configurations (Section V-D).
func Figure12(ctx context.Context, r *Runner) (*PerfResult, error) {
	out := &PerfResult{}
	var slows, losses []float64
	for _, b := range workload.All() {
		full, err := r.Result(ctx, b, KindFullPower)
		if err != nil {
			return nil, err
		}
		chop, err := r.Result(ctx, b, KindPowerChop)
		if err != nil {
			return nil, err
		}
		min, err := r.Result(ctx, b, KindMinPower)
		if err != nil {
			return nil, err
		}
		chopPerf := full.Cycles / chop.Cycles
		minPerf := full.Cycles / min.Cycles
		out.Rows = append(out.Rows, PerfRow{
			Benchmark: b.Name,
			Suite:     b.Suite,
			PowerChop: chopPerf,
			MinPower:  minPerf,
		})
		slows = append(slows, 1-chopPerf)
		losses = append(losses, 1-minPerf)
	}
	out.AvgSlowdown = stats.Mean(slows)
	out.AvgMinLoss = stats.Mean(losses)
	return out, nil
}

// PowerRow is one benchmark's Figure 13/14 entry.
type PowerRow struct {
	Benchmark  string
	Suite      string
	PowerRed   float64 // total core power reduction
	EnergyRed  float64 // total energy reduction
	LeakageRed float64 // leakage power reduction
}

// PowerResult is Figures 13 and 14.
type PowerResult struct {
	Rows []PowerRow
	// Suite and overall averages, keyed by suite name plus "all".
	AvgPower   map[string]float64
	AvgEnergy  map[string]float64
	AvgLeakage map[string]float64
}

// renderReduction draws one metric across apps.
func (p *PowerResult) renderReduction(title string, metric func(PowerRow) float64, avg map[string]float64, paperNote string) string {
	rows := make([]textplot.Row, len(p.Rows))
	for i, r := range p.Rows {
		rows[i] = textplot.Row{Label: r.Benchmark, Value: metric(r) * 100}
	}
	var b strings.Builder
	b.WriteString(textplot.BarChart(title, rows, 40, "%.1f%%"))
	fmt.Fprintf(&b, "  suite averages:")
	for _, s := range workload.Suites() {
		fmt.Fprintf(&b, " %s %.1f%%", s, avg[s]*100)
	}
	fmt.Fprintf(&b, "; all %.1f%%\n  %s\n", avg["all"]*100, paperNote)
	return b.String()
}

// RenderFigure13 draws total power and energy reductions.
func (p *PowerResult) RenderFigure13() string {
	return p.renderReduction(
		"Figure 13: total core power reduction with PowerChop",
		func(r PowerRow) float64 { return r.PowerRed }, p.AvgPower,
		"(paper: 10% SPEC-INT, 6% SPEC-FP, 8% PARSEC, 19% MobileBench; up to 40% for lbm/milc/amazon)") +
		p.renderReduction(
			"Figure 13 (cont.): total energy reduction with PowerChop",
			func(r PowerRow) float64 { return r.EnergyRed }, p.AvgEnergy,
			"(paper: 9% average, up to 37%)")
}

// RenderFigure14 draws leakage power reductions.
func (p *PowerResult) RenderFigure14() string {
	return p.renderReduction(
		"Figure 14: core leakage power reduction with PowerChop",
		func(r PowerRow) float64 { return r.LeakageRed }, p.AvgLeakage,
		"(paper: 23% SPEC-INT, 10% SPEC-FP, 12% PARSEC, 32% MobileBench; up to 52%)")
}

// PowerReductions runs the Figure 13/14 comparison (PowerChop vs
// full-power) across every benchmark.
func PowerReductions(ctx context.Context, r *Runner) (*PowerResult, error) {
	out := &PowerResult{
		AvgPower:   map[string]float64{},
		AvgEnergy:  map[string]float64{},
		AvgLeakage: map[string]float64{},
	}
	perSuite := map[string][]PowerRow{}
	for _, b := range workload.All() {
		full, err := r.Result(ctx, b, KindFullPower)
		if err != nil {
			return nil, err
		}
		chop, err := r.Result(ctx, b, KindPowerChop)
		if err != nil {
			return nil, err
		}
		row := PowerRow{
			Benchmark:  b.Name,
			Suite:      b.Suite,
			PowerRed:   1 - chop.Power.AvgPowerW()/full.Power.AvgPowerW(),
			EnergyRed:  1 - chop.Power.TotalEnergyJ()/full.Power.TotalEnergyJ(),
			LeakageRed: 1 - chop.Power.AvgLeakageW()/full.Power.AvgLeakageW(),
		}
		out.Rows = append(out.Rows, row)
		perSuite[b.Suite] = append(perSuite[b.Suite], row)
	}
	mean := func(rows []PowerRow, f func(PowerRow) float64) float64 {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, f(r))
		}
		return stats.Mean(xs)
	}
	for suite, rows := range perSuite {
		out.AvgPower[suite] = mean(rows, func(r PowerRow) float64 { return r.PowerRed })
		out.AvgEnergy[suite] = mean(rows, func(r PowerRow) float64 { return r.EnergyRed })
		out.AvgLeakage[suite] = mean(rows, func(r PowerRow) float64 { return r.LeakageRed })
	}
	out.AvgPower["all"] = mean(out.Rows, func(r PowerRow) float64 { return r.PowerRed })
	out.AvgEnergy["all"] = mean(out.Rows, func(r PowerRow) float64 { return r.EnergyRed })
	out.AvgLeakage["all"] = mean(out.Rows, func(r PowerRow) float64 { return r.LeakageRed })
	return out, nil
}

// Figure13 returns the power/energy reductions (alias of PowerReductions,
// named for the figure index).
func Figure13(ctx context.Context, r *Runner) (*PowerResult, error) { return PowerReductions(ctx, r) }

// Figure14 returns the same underlying comparison rendered as Figure 14.
func Figure14(ctx context.Context, r *Runner) (*PowerResult, error) { return PowerReductions(ctx, r) }
