package experiments

import (
	"context"
	"fmt"
	"strings"

	"powerchop/internal/stats"
	"powerchop/internal/textplot"
	"powerchop/internal/workload"
)

// TimeSeriesResult is a Figure 1-3 style time-series comparison.
type TimeSeriesResult struct {
	Title   string
	XLabel  string
	Series  []stats.Series
	Remarks []string
}

// Render draws the series as sparklines with their ranges.
func (t *TimeSeriesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (x: %s)\n", t.Title, t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, "  %s\n", textplot.Series(s.Label, s.Values, 72))
	}
	for _, r := range t.Remarks {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// sampleInterval for the time-series figures (guest instructions).
const tsSampleInterval = 20000

// Figure1 reproduces the paper's Figure 1: vector-operation intensity over
// the execution of gobmk, showing VPU criticality varying across phases
// (including scarce-but-nonzero periods).
func Figure1(ctx context.Context, r *Runner) (*TimeSeriesResult, error) {
	b, err := workload.ByName("gobmk")
	if err != nil {
		return nil, err
	}
	res, err := r.Sampled(ctx, b, KindFullPower, tsSampleInterval)
	if err != nil {
		return nil, err
	}
	vec := stats.Series{Label: "vector-ops"}
	for _, s := range res.Samples {
		vec.Append(float64(s.VectorOps))
	}
	zero, nonzeroLow := 0, 0
	for _, v := range vec.Values {
		switch {
		case v == 0:
			zero++
		case v <= 0.002*tsSampleInterval:
			nonzeroLow++
		}
	}
	return &TimeSeriesResult{
		Title:  "Figure 1: vector operation intensity over gobmk execution",
		XLabel: fmt.Sprintf("%d-instruction intervals", tsSampleInterval),
		Series: []stats.Series{vec},
		Remarks: []string{
			fmt.Sprintf("intervals with zero vector ops: %d/%d; scarce-but-nonzero: %d/%d",
				zero, len(vec.Values), nonzeroLow, len(vec.Values)),
		},
	}, nil
}

// Figure2 reproduces Figure 2: IPC of the MobileBench msn browser workload
// under the small (local) and large (tournament) branch predictors. The
// large predictor wins overall, but during many phases the benefit is
// negligible.
func Figure2(ctx context.Context, r *Runner) (*TimeSeriesResult, error) {
	b, err := workload.ByName("msn")
	if err != nil {
		return nil, err
	}
	large, err := r.Sampled(ctx, b, KindFullPower, tsSampleInterval)
	if err != nil {
		return nil, err
	}
	small, err := r.Sampled(ctx, b, KindSmallBPU, tsSampleInterval)
	if err != nil {
		return nil, err
	}
	largeS := stats.Series{Label: "large-bpu IPC"}
	for _, s := range large.Samples {
		largeS.Append(s.IPC)
	}
	smallS := stats.Series{Label: "small-bpu IPC"}
	for _, s := range small.Samples {
		smallS.Append(s.IPC)
	}
	return &TimeSeriesResult{
		Title:  "Figure 2: small (local) vs large (tournament) BPU IPC on MobileBench msn",
		XLabel: fmt.Sprintf("%d-instruction intervals", tsSampleInterval),
		Series: []stats.Series{largeS, smallS},
		Remarks: []string{
			fmt.Sprintf("mean IPC: large %.3f, small %.3f (large wins overall; equal during biased-branch phases)",
				stats.Mean(largeS.Values), stats.Mean(smallS.Values)),
		},
	}, nil
}

// Figure3 reproduces Figure 3: IPC of GemsFDTD with the full 1024KB 8-way
// MLC vs the 128KB 1-way configuration. The full MLC only matters during
// the phase whose working set fits it.
func Figure3(ctx context.Context, r *Runner) (*TimeSeriesResult, error) {
	b, err := workload.ByName("GemsFDTD")
	if err != nil {
		return nil, err
	}
	full, err := r.Sampled(ctx, b, KindFullPower, tsSampleInterval)
	if err != nil {
		return nil, err
	}
	oneWay, err := r.Sampled(ctx, b, KindMLCOne, tsSampleInterval)
	if err != nil {
		return nil, err
	}
	fullS := stats.Series{Label: "1024KB 8-way IPC"}
	for _, s := range full.Samples {
		fullS.Append(s.IPC)
	}
	oneS := stats.Series{Label: "128KB 1-way IPC"}
	for _, s := range oneWay.Samples {
		oneS.Append(s.IPC)
	}
	return &TimeSeriesResult{
		Title:  "Figure 3: 128KB 1-way vs 1024KB 8-way MLC performance on GemsFDTD",
		XLabel: fmt.Sprintf("%d-instruction intervals", tsSampleInterval),
		Series: []stats.Series{fullS, oneS},
		Remarks: []string{
			fmt.Sprintf("mean IPC: full MLC %.3f, 1-way %.3f; the gap concentrates in the MLC-resident phase",
				stats.Mean(fullS.Values), stats.Mean(oneS.Values)),
		},
	}, nil
}
