// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V). Each FigureN/TableN function runs the required
// simulations through a memoizing Runner — several figures share the same
// underlying runs — and returns a structured result that renders as a
// plain-text chart shaped like the paper's figure.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"powerchop/internal/arch"
	"powerchop/internal/core"
	"powerchop/internal/obs"
	"powerchop/internal/obs/span"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/policy"
	"powerchop/internal/program"
	"powerchop/internal/pvt"
	"powerchop/internal/rescache"
	"powerchop/internal/sim"
	"powerchop/internal/workload"
)

// Kind selects the power-management configuration of a run.
type Kind string

const (
	// KindFullPower keeps the VPU, BPU and MLC at full power (Figure 12's
	// baseline).
	KindFullPower Kind = "full-power"
	// KindPowerChop runs the full PowerChop system managing all three
	// units.
	KindPowerChop Kind = "powerchop"
	// KindMinPower holds every unit in its lowest-power state.
	KindMinPower Kind = "min-power"
	// KindTimeout runs the hardware-only 20K-cycle idle-timeout VPU
	// baseline of Section V-E.
	KindTimeout Kind = "timeout"
	// KindSmallBPU forces the small local predictor (Figure 2's series).
	KindSmallBPU Kind = "small-bpu"
	// KindMLCOne forces the one-way MLC (Figure 3's 128KB 1-way series).
	KindMLCOne Kind = "mlc-one-way"
	// KindChopVPU runs PowerChop managing only the VPU (per-unit study).
	KindChopVPU Kind = "powerchop-vpu"
	// KindChopBPU runs PowerChop managing only the BPU.
	KindChopBPU Kind = "powerchop-bpu"
	// KindChopMLC runs PowerChop managing only the MLC.
	KindChopMLC Kind = "powerchop-mlc"
)

// Runner executes and memoizes benchmark runs. Figures share a Runner so
// that, e.g., the PowerChop runs behind Figures 9-14 happen once.
//
// The Runner is safe for concurrent use: simultaneous Result calls for
// the same benchmark×kind key are deduplicated singleflight-style (one
// caller simulates, the rest wait for its result), and the total number
// of in-flight simulations is bounded by the runner's job count. Each
// simulation itself is single-threaded and deterministic, so the set of
// cached Results is identical however calls interleave.
type Runner struct {
	mu      sync.Mutex
	scale   float64
	flights map[string]*flight
	sem     chan struct{}
	sims    atomic.Uint64

	// Tracer, when non-nil, is threaded into every simulation the runner
	// launches (cached results are not re-run, so set it before the first
	// Result call). Figures run many benchmarks through one Runner, so a
	// shared sink must be safe for concurrent emission.
	Tracer obs.Tracer

	// Progress, when non-nil, receives run lifecycle updates: queued when
	// a flight is registered, simulating once it holds a job slot (then
	// again at every window boundary with live counters), and done or
	// error at completion. Like Tracer, set it before the first Result
	// call; implementations must be safe for concurrent use.
	Progress ProgressSink

	// Cache, when non-nil, is a persistent result store consulted before
	// each simulation and filled after it: a hit skips the run entirely
	// and never occupies a job slot. When a Tracer is also set the cache
	// is bypassed (and the bypass counted) — a cached result cannot
	// replay the event stream. Set it before the first Result call.
	Cache *rescache.Cache

	// Batch caps how many cold lanes one ResultBatch call hands to a
	// single batched simulation (sim.RunBatch): 0 selects the default
	// cap, 1 disables batching (every lane simulates solo). Batching is
	// a pure wall-clock optimization — results, cache entries and
	// singleflight keys are identical either way. Set it before the
	// first call.
	Batch int
}

// flight is one cache entry: the simulation's result once done is
// closed, and the dedup point for concurrent callers until then.
type flight struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewRunner returns a runner with GOMAXPROCS parallelism. scale
// multiplies the default run length of two full passes through each
// benchmark's phase schedule; 1 is the calibrated default, smaller
// values shorten smoke runs.
func NewRunner(scale float64) *Runner {
	return NewParallelRunner(scale, 0)
}

// NewParallelRunner returns a runner that allows at most jobs concurrent
// simulations (jobs <= 0 selects GOMAXPROCS). jobs bounds simulation
// work only; any number of callers may block in Result waiting on
// flights without occupying a job slot.
func NewParallelRunner(scale float64, jobs int) *Runner {
	if scale <= 0 {
		scale = 1
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		scale:   scale,
		flights: map[string]*flight{},
		sem:     make(chan struct{}, jobs),
	}
}

// Jobs returns the maximum number of concurrent simulations.
func (r *Runner) Jobs() int { return cap(r.sem) }

// Simulations returns how many simulations the runner has actually
// executed (cache hits and deduplicated waiters do not count).
func (r *Runner) Simulations() uint64 { return r.sims.Load() }

// runLength scales the default run of two schedule passes, but never
// below one full pass: every phase must execute at least once for the
// figures to be meaningful.
func (r *Runner) runLength(schedule int) uint64 {
	n := uint64(float64(2*schedule) * r.scale)
	if n < uint64(schedule) {
		n = uint64(schedule)
	}
	return n
}

// manager constructs a fresh manager of the kind (managers are stateful
// and must not be shared across runs). The base kinds resolve through
// the policy registry at default parameters — the registry is the
// single source of manager construction — while the study-only kinds
// (forced unit states, per-unit PowerChop isolation) keep their local
// wiring: they are experiment configurations, not selectable policies.
func manager(kind Kind) (core.Manager, error) {
	switch kind {
	case KindFullPower, KindPowerChop, KindMinPower, KindTimeout:
		spec, ok := policy.Lookup(string(kind))
		if !ok {
			return nil, fmt.Errorf("experiments: kind %q not in policy registry", kind)
		}
		return spec.Manager(nil)
	case KindSmallBPU:
		p := core.AlwaysOn().Policy
		p.BPUOn = false
		return &core.Static{ManagerName: string(KindSmallBPU), Policy: p}, nil
	case KindMLCOne:
		p := core.AlwaysOn().Policy
		p.MLC = pvt.MLCOne
		return &core.Static{ManagerName: string(KindMLCOne), Policy: p}, nil
	case KindChopVPU, KindChopBPU, KindChopMLC:
		cfg := core.DefaultConfig()
		cfg.Managed.VPU = kind == KindChopVPU
		cfg.Managed.BPU = kind == KindChopBPU
		cfg.Managed.MLC = kind == KindChopMLC
		return core.NewPowerChop(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown run kind %q", kind)
	}
}

// designFor picks the benchmark's design point: MobileBench runs on the
// mobile core, everything else on the server core (Section V-A).
func designFor(b workload.Benchmark) arch.Design {
	if b.Mobile {
		return arch.Mobile()
	}
	return arch.Server()
}

// runSpec describes one run configuration beyond the benchmark: how to
// build the manager, how the run keys into the memo and persistent
// caches, and how it is labeled in progress reports and spans.
type runSpec struct {
	// label identifies the configuration in progress updates and spans.
	label Kind
	// managerKey is the persistent-cache Manager field (the kind string
	// for the fixed kinds, the policy fingerprint for policy runs).
	managerKey string
	// quality enables translation-quality tracking on unsampled runs
	// (the canonical PowerChop runs feed the quality figure).
	quality bool
	// build constructs a fresh manager (managers are stateful and must
	// not be shared across runs).
	build func() (core.Manager, error)
	// telemetry, when non-nil, attaches a time-series store to the run
	// (Telemetry runs only; forces a cache bypass — a cached result
	// cannot replay the per-window series).
	telemetry *tsdb.Store
}

// kindRun is the runSpec of a fixed experiment kind.
func kindRun(kind Kind) runSpec {
	return runSpec{
		label:      kind,
		managerKey: string(kind),
		quality:    kind == KindPowerChop,
		build:      func() (core.Manager, error) { return manager(kind) },
	}
}

// policyRun is the runSpec of a registered policy at a parameter
// assignment. The memo and persistent-cache keys are the policy
// fingerprint, so two sweeps of the same grid share entries exactly.
func policyRun(name string, params policy.Params) (runSpec, error) {
	spec, ok := policy.Lookup(name)
	if !ok {
		return runSpec{}, fmt.Errorf("experiments: unknown policy %q", name)
	}
	fp, err := spec.Fingerprint(params)
	if err != nil {
		return runSpec{}, err
	}
	p := params.Clone()
	return runSpec{
		label:      Kind(name),
		managerKey: fp,
		build:      func() (core.Manager, error) { return spec.Manager(p) },
	}, nil
}

// Result returns the (cached) run of the benchmark under the kind.
// Concurrent calls for the same key simulate exactly once: the first
// caller registers a flight and runs, later callers wait on it. Errors
// are not cached — a failed flight is dropped so a subsequent call can
// retry, matching the serial runner's cache-on-success semantics.
//
// When ctx carries a span (internal/obs/span) the flight owner's
// simulation runs under a "benchmark" child span; deduplicated waiters
// and cache hits open no span of their own.
func (r *Runner) Result(ctx context.Context, b workload.Benchmark, kind Kind) (*sim.Result, error) {
	return r.result(ctx, b, kindRun(kind))
}

// PolicyResult returns the (cached) run of the benchmark under a
// registered policy at the given parameters, with Result's singleflight
// and persistent-cache semantics keyed by the policy fingerprint. It
// errors on an unknown policy or an invalid parameter assignment.
func (r *Runner) PolicyResult(ctx context.Context, b workload.Benchmark, name string, params policy.Params) (*sim.Result, error) {
	rs, err := policyRun(name, params)
	if err != nil {
		return nil, err
	}
	return r.result(ctx, b, rs)
}

// result is the shared singleflight path behind Result and PolicyResult.
func (r *Runner) result(ctx context.Context, b workload.Benchmark, rs runSpec) (*sim.Result, error) {
	key := b.Name + "/" + rs.managerKey
	r.mu.Lock()
	if f, ok := r.flights[key]; ok {
		r.mu.Unlock()
		<-f.done
		return f.res, f.err
	}
	f := &flight{done: make(chan struct{})}
	r.flights[key] = f
	r.mu.Unlock()

	// Only the flight owner reports progress: deduplicated waiters would
	// otherwise produce duplicate lifecycle transitions for the same run.
	r.report(RunUpdate{Benchmark: b.Name, Kind: rs.label, State: RunQueued})
	f.res, f.err = r.simulate(ctx, b, rs, 0, true)
	if f.err != nil {
		r.mu.Lock()
		delete(r.flights, key)
		r.mu.Unlock()
	}
	close(f.done)
	return f.res, f.err
}

// Sampled runs the benchmark with time-series sampling enabled (used by
// the Figure 1-3 time-series plots; not cached, but still bounded by the
// runner's job slots).
func (r *Runner) Sampled(ctx context.Context, b workload.Benchmark, kind Kind, sampleInterval uint64) (*sim.Result, error) {
	// Sampled runs are uncached extras sharing a key with the canonical
	// run, so they stay silent on the progress board.
	return r.simulate(ctx, b, kindRun(kind), sampleInterval, false)
}

// Telemetry runs the benchmark with the time-series store attached as an
// extra event sink (used by the power-trace figure and `powerchop top`'s
// in-process mode). Like Sampled it is never cached — a cached result
// cannot replay the per-window series — but still bounded by the
// runner's job slots. The runner's shared Tracer, if any, stays attached
// alongside, so figure output remains byte-identical either way.
func (r *Runner) Telemetry(ctx context.Context, b workload.Benchmark, kind Kind, ts *tsdb.Store) (*sim.Result, error) {
	rs := kindRun(kind)
	rs.telemetry = ts
	return r.simulate(ctx, b, rs, 0, false)
}

// BatchRun selects one lane of a ResultBatch call: a fixed experiment
// Kind, or — when Policy is non-empty — a registered policy at a
// parameter assignment, the same selections Result and PolicyResult
// make individually.
type BatchRun struct {
	Kind   Kind
	Policy string
	Params policy.Params
}

// ResultBatch returns the runs of the benchmark under every requested
// configuration, in input order, with Result's singleflight and
// persistent-cache semantics per lane. Lanes not already in flight or
// in the cache share batched simulations — one instruction walk driving
// every lane (internal/sim.RunBatch) — which is byte-identical to solo
// runs: the batch only amortizes the shared front-end work.
func (r *Runner) ResultBatch(ctx context.Context, b workload.Benchmark, runs []BatchRun) ([]*sim.Result, error) {
	rss := make([]runSpec, len(runs))
	for i, br := range runs {
		if br.Policy != "" {
			rs, err := policyRun(br.Policy, br.Params)
			if err != nil {
				return nil, err
			}
			rss[i] = rs
		} else {
			rss[i] = kindRun(br.Kind)
		}
	}
	return r.resultBatch(ctx, b, rss)
}

// batchCap resolves the runner's Batch setting into a group cap. The
// default matches the root package's: past ~16 lanes the per-lane work
// dominates and wider groups only cost memory.
func (r *Runner) batchCap() int {
	if r.Batch <= 0 {
		return 16
	}
	return r.Batch
}

// resultBatch is the batched counterpart of result: it claims a flight
// per lane (lanes already in flight elsewhere are simply awaited),
// serves persistent-cache hits, and drives the cold remainder through
// batched simulations. A failed flight is dropped for retry, exactly
// like result's.
func (r *Runner) resultBatch(ctx context.Context, b workload.Benchmark, rss []runSpec) ([]*sim.Result, error) {
	if r.batchCap() == 1 || r.Tracer != nil {
		// Nothing to batch — and with a tracer attached every run wants
		// its own solo event stream (and bypasses the cache) anyway.
		out := make([]*sim.Result, len(rss))
		for i, rs := range rss {
			res, err := r.result(ctx, b, rs)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	flights := make([]*flight, len(rss))
	owned := make([]int, 0, len(rss))
	r.mu.Lock()
	for i, rs := range rss {
		key := b.Name + "/" + rs.managerKey
		if f, ok := r.flights[key]; ok {
			// Already in flight (possibly owned earlier in this very
			// loop, for duplicate lanes): await it below.
			flights[i] = f
			continue
		}
		f := &flight{done: make(chan struct{})}
		r.flights[key] = f
		flights[i] = f
		owned = append(owned, i)
	}
	r.mu.Unlock()
	if len(owned) > 0 {
		r.simulateBatch(ctx, b, rss, flights, owned)
	}
	out := make([]*sim.Result, len(rss))
	for i := range rss {
		<-flights[i].done
		if flights[i].err != nil {
			return nil, flights[i].err
		}
		out[i] = flights[i].res
	}
	return out, nil
}

// simulateBatch executes the owned lanes: persistent-cache hits resolve
// immediately (never occupying a job slot), the rest simulate in groups
// of at most batchCap lanes, each group holding one slot. Every owned
// flight is filled and closed here; a group failure fails every lane
// still pending in this call.
func (r *Runner) simulateBatch(ctx context.Context, b workload.Benchmark, rss []runSpec, flights []*flight, owned []int) {
	started := time.Now()
	var runLen uint64
	settle := func(i int, res *sim.Result, err error) {
		f := flights[i]
		f.res, f.err = res, err
		if err != nil {
			r.mu.Lock()
			delete(r.flights, b.Name+"/"+rss[i].managerKey)
			r.mu.Unlock()
		}
		if r.Progress != nil {
			u := RunUpdate{Benchmark: b.Name, Kind: rss[i].label, State: RunDone, Elapsed: time.Since(started)}
			if err != nil {
				u.State, u.Err = RunError, err
			} else {
				u.Cycles, u.Windows = res.Cycles, res.Windows
				u.Translations, u.Total = runLen, runLen
			}
			r.report(u)
		}
		close(f.done)
	}

	for _, i := range owned {
		r.report(RunUpdate{Benchmark: b.Name, Kind: rss[i].label, State: RunQueued})
	}
	p, err := b.Build()
	if err != nil {
		for _, i := range owned {
			settle(i, nil, err)
		}
		return
	}
	runLen = r.runLength(p.TotalScheduleTranslations())
	keys := make([]rescache.Key, len(rss))
	cacheable := make([]bool, len(rss))
	var cold []int
	for _, i := range owned {
		keys[i], cacheable[i] = r.cacheKey(b, p, rss[i], 0, runLen)
		if cacheable[i] {
			if hit, ok := r.Cache.Get(keys[i]); ok {
				settle(i, hit, nil)
				continue
			}
		}
		cold = append(cold, i)
	}
	width := r.batchCap()
	for lo := 0; lo < len(cold); lo += width {
		hi := lo + width
		if hi > len(cold) {
			hi = len(cold)
		}
		group := cold[lo:hi]
		res, err := r.simulateGroup(ctx, b, p, rss, group, runLen)
		if err != nil {
			for _, i := range cold[lo:] {
				settle(i, nil, err)
			}
			return
		}
		for j, i := range group {
			if cacheable[i] {
				// Best-effort, as on the solo path.
				_ = r.Cache.Put(keys[i], res[j])
			}
			settle(i, res[j], nil)
		}
	}
}

// simulateGroup runs one batched group while holding a single job slot
// (the group shares one instruction walk, so it costs about one
// simulation's worth of sequential work plus the per-lane residue).
func (r *Runner) simulateGroup(ctx context.Context, b workload.Benchmark, p *program.Program, rss []runSpec, lanes []int, runLen uint64) (res []*sim.Result, err error) {
	ctx, sp := span.Start(ctx, "benchbatch",
		"bench="+b.Name, fmt.Sprintf("lanes=%d", len(lanes)))
	defer func() { sp.EndErr(err) }()
	cfgs := make([]sim.Config, len(lanes))
	for j, i := range lanes {
		m, err := rss[i].build()
		if err != nil {
			return nil, err
		}
		cfgs[j] = sim.Config{
			Context:         ctx,
			Design:          designFor(b),
			Manager:         m,
			MaxTranslations: runLen,
			TrackQuality:    rss[i].quality,
			Telemetry:       rss[i].telemetry,
		}
		if r.Progress != nil {
			label := rss[i].label
			cfgs[j].Progress = func(pr sim.Progress) {
				r.report(RunUpdate{
					Benchmark:    b.Name,
					Kind:         label,
					State:        RunSimulating,
					Cycles:       pr.Cycle,
					Translations: pr.Translations,
					Total:        pr.MaxTranslations,
					Windows:      pr.Windows,
				})
			}
		}
	}
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	if r.Progress != nil {
		for _, i := range lanes {
			r.report(RunUpdate{Benchmark: b.Name, Kind: rss[i].label, State: RunSimulating})
		}
	}
	r.sims.Add(uint64(len(lanes)))
	res, err = sim.RunBatch(p, cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s batch: %w", b.Name, err)
	}
	return res, nil
}

// cacheKey derives the canonical persistent-cache key for a run, or
// reports that the cache must be skipped: no cache configured, or a
// tracer or telemetry store attached (a cached result cannot replay the
// event stream — that skip is counted as a bypass).
func (r *Runner) cacheKey(b workload.Benchmark, p *program.Program, rs runSpec, sampleInterval, runLen uint64) (rescache.Key, bool) {
	if r.Cache == nil {
		return rescache.Key{}, false
	}
	if r.Tracer != nil || rs.telemetry != nil {
		r.Cache.CountBypass()
		return rescache.Key{}, false
	}
	return rescache.Key{
		Program: p.Digest(),
		Design:  rescache.Fingerprint(designFor(b)),
		Manager: rs.managerKey,
		Config: fmt.Sprintf("translations=%d sample=%d quality=%t",
			runLen, sampleInterval, sampleInterval == 0 && rs.quality),
	}, true
}

// simulate executes one run while holding a job slot. Only simulating
// goroutines occupy slots — flight waiters block outside and persistent
// cache hits return before acquisition — so the pool cannot deadlock
// however callers fan out.
func (r *Runner) simulate(ctx context.Context, b workload.Benchmark, rs runSpec, sampleInterval uint64, report bool) (res *sim.Result, err error) {
	ctx, sp := span.Start(ctx, "benchmark",
		"bench="+b.Name, "kind="+string(rs.label))
	defer func() { sp.EndErr(err) }()
	report = report && r.Progress != nil
	var runLen uint64
	if report {
		started := time.Now()
		defer func() {
			u := RunUpdate{Benchmark: b.Name, Kind: rs.label, State: RunDone, Elapsed: time.Since(started)}
			if err != nil {
				u.State, u.Err = RunError, err
			} else {
				u.Cycles, u.Windows = res.Cycles, res.Windows
				u.Translations, u.Total = runLen, runLen
			}
			r.report(u)
		}()
	}

	m, err := rs.build()
	if err != nil {
		return nil, err
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	runLen = r.runLength(p.TotalScheduleTranslations())
	key, cacheable := r.cacheKey(b, p, rs, sampleInterval, runLen)
	if cacheable {
		if hit, ok := r.Cache.Get(key); ok {
			return hit, nil
		}
	}

	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	if report {
		r.report(RunUpdate{Benchmark: b.Name, Kind: rs.label, State: RunSimulating})
	}
	r.sims.Add(1)
	cfg := sim.Config{
		Context:         ctx,
		Design:          designFor(b),
		Manager:         m,
		MaxTranslations: runLen,
		SampleInterval:  sampleInterval,
		TrackQuality:    sampleInterval == 0 && rs.quality,
		Tracer:          r.Tracer,
		Telemetry:       rs.telemetry,
	}
	if report {
		cfg.Progress = func(pr sim.Progress) {
			r.report(RunUpdate{
				Benchmark:    b.Name,
				Kind:         rs.label,
				State:        RunSimulating,
				Cycles:       pr.Cycle,
				Translations: pr.Translations,
				Total:        pr.MaxTranslations,
				Windows:      pr.Windows,
			})
		}
	}
	res, err = sim.Run(p, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%s: %w", b.Name, rs.label, err)
	}
	if cacheable {
		// Best-effort: a failed store is counted by the cache but must
		// not fail the run that produced a perfectly good result.
		_ = r.Cache.Put(key, res)
	}
	return res, nil
}
