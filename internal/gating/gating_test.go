package gating

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestResidencyAccumulation(t *testing.T) {
	u := NewUnit("VPU", 1)
	if changed := u.Set(0, 100); !changed {
		t.Fatal("transition not reported as change")
	}
	if changed := u.Set(0, 200); changed {
		t.Fatal("same-state set reported as change")
	}
	u.Set(1, 300)
	u.CloseOut(1000)
	if got := u.Residency(1); !almost(got, 100+700) {
		t.Fatalf("on residency = %v, want 800", got)
	}
	if got := u.Residency(0); !almost(got, 200) {
		t.Fatalf("off residency = %v, want 200", got)
	}
	if got := u.TotalCycles(); !almost(got, 1000) {
		t.Fatalf("total = %v", got)
	}
	if got := u.Switches(); got != 2 {
		t.Fatalf("switches = %d", got)
	}
}

func TestGatedFrac(t *testing.T) {
	u := NewUnit("MLC", 1)
	u.Set(0.5, 250)
	u.Set(0.125, 500)
	u.CloseOut(1000)
	// 250 cycles fully on, 250 half, 500 one-way.
	if got := u.GatedFrac(); !almost(got, 0.75) {
		t.Fatalf("GatedFrac = %v, want 0.75", got)
	}
	if got := u.FracBelow(0.5); !almost(got, 0.5) {
		t.Fatalf("FracBelow(0.5) = %v, want 0.5", got)
	}
	if got := u.FracBelow(1); !almost(got, 0.75) {
		t.Fatalf("FracBelow(1) = %v, want 0.75", got)
	}
}

func TestLevels(t *testing.T) {
	u := NewUnit("MLC", 1)
	u.Set(0.125, 10)
	u.Set(0.5, 20)
	u.CloseOut(30)
	levels := u.Levels()
	want := []float64{0.125, 0.5, 1}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
}

func TestSwitchesPerMillionCycles(t *testing.T) {
	u := NewUnit("BPU", 1)
	for i := 1; i <= 10; i++ {
		u.Set(float64(i%2), float64(i)*100000)
	}
	u.CloseOut(2e6)
	// The first Set(1, …) matches the initial state, so 9 transitions
	// over 2M cycles = 4.5 per million.
	if got := u.SwitchesPerMillionCycles(); !almost(got, 4.5) {
		t.Fatalf("SwitchesPerMillionCycles = %v, want 4.5", got)
	}
}

func TestRetroactiveOrdering(t *testing.T) {
	// A timeout manager decides late but issues transitions in time order.
	u := NewUnit("VPU", 1)
	u.Set(0, 20000) // retroactive gate-off at idle start + timeout
	u.Set(1, 50000) // wake at the next vector op
	u.CloseOut(60000)
	if got := u.Residency(0); !almost(got, 30000) {
		t.Fatalf("off residency = %v, want 30000", got)
	}
}

func TestZeroCyclesGatedFrac(t *testing.T) {
	u := NewUnit("VPU", 1)
	u.CloseOut(0)
	if u.GatedFrac() != 0 || u.FracBelow(1) != 0 || u.SwitchesPerMillionCycles() != 0 {
		t.Fatal("zero-length run should report zeros")
	}
}

func TestDoubleCloseOutIsIdempotent(t *testing.T) {
	u := NewUnit("VPU", 1)
	u.Set(0, 10)
	u.CloseOut(100)
	u.CloseOut(100) // no-op
	if got := u.TotalCycles(); !almost(got, 100) {
		t.Fatalf("total = %v", got)
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"bad-init", func() { NewUnit("x", 2) }},
		{"bad-frac", func() { NewUnit("x", 1).Set(1.5, 10) }},
		{"time-backwards", func() {
			u := NewUnit("x", 1)
			u.Set(0, 100)
			u.Set(1, 50)
		}},
		{"use-after-close", func() {
			u := NewUnit("x", 1)
			u.CloseOut(10)
			u.Set(0, 20)
		}},
		{"close-backwards", func() {
			u := NewUnit("x", 1)
			u.Set(0, 100)
			u.CloseOut(50)
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestName(t *testing.T) {
	if NewUnit("BPU", 1).Name() != "BPU" {
		t.Fatal("name not preserved")
	}
	if NewUnit("BPU", 0.5).PowerFrac() != 0.5 {
		t.Fatal("initial power fraction not preserved")
	}
}
