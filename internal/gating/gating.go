// Package gating implements the sleep-transistor controller for gateable
// units: it tracks each unit's power state over simulated time, counts
// gating transitions, and accumulates residency (cycles spent at each
// power level) for the power model and for the paper's unit-activity and
// policy-change-frequency figures (Figures 9-11).
//
// Power levels are expressed as the fraction of the unit's circuits that
// remain powered: 1 is fully on, 0 fully gated, and the MLC's way-gating
// states use 0.5 (half the ways) and 1/ways (a single way).
//
// A Unit is not internally synchronized: it belongs to the single
// simulation goroutine of the managed unit that owns it (see
// internal/sim). Concurrent simulations each build their own trackers;
// only the obs.Tracer they emit into may be shared, and those sinks are
// documented concurrency-safe.
package gating

import (
	"fmt"
	"sort"

	"powerchop/internal/obs"
)

// Unit tracks the gating state of one logical unit over simulated cycles.
type Unit struct {
	name      string
	powerFrac float64
	lastCycle float64
	switches  uint64
	residency map[float64]float64
	closed    bool
	tracer    obs.Tracer
}

// NewUnit creates a unit tracker starting at the given power fraction at
// cycle 0.
func NewUnit(name string, initFrac float64) *Unit {
	if initFrac < 0 || initFrac > 1 {
		panic(fmt.Sprintf("gating: unit %q initial power fraction %v", name, initFrac))
	}
	return &Unit{name: name, powerFrac: initFrac, residency: map[float64]float64{}}
}

// Name returns the unit's label.
func (u *Unit) Name() string { return u.name }

// SetTracer attaches an event tracer; each state change then emits a
// KindGate event. A nil tracer (the default) disables emission.
func (u *Unit) SetTracer(t obs.Tracer) { u.tracer = t }

// PowerFrac returns the unit's current power fraction.
func (u *Unit) PowerFrac() float64 { return u.powerFrac }

// Set transitions the unit to the given power fraction at the given cycle,
// accumulating residency for the elapsed interval at the previous level.
// It returns true when the call actually changed the unit's state (and so
// counts as a gating transition). Cycles must be non-decreasing across
// calls; this allows retroactive transitions (a timeout policy deciding at
// cycle Y that the unit went idle at an earlier cycle X still issues its
// Set calls in time order X then Y).
func (u *Unit) Set(frac, cycle float64) bool {
	return u.Transition(frac, cycle, 0)
}

// Transition is Set with the stall-cycle cost the caller charges for the
// change, so the emitted gating event carries the transition's price. A
// no-op call (frac unchanged) emits nothing.
func (u *Unit) Transition(frac, cycle, stallCycles float64) bool {
	if u.closed {
		panic(fmt.Sprintf("gating: unit %q used after CloseOut", u.name))
	}
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("gating: unit %q power fraction %v", u.name, frac))
	}
	if cycle < u.lastCycle {
		panic(fmt.Sprintf("gating: unit %q time went backwards (%v < %v)", u.name, cycle, u.lastCycle))
	}
	u.residency[u.powerFrac] += cycle - u.lastCycle
	u.lastCycle = cycle
	if frac == u.powerFrac {
		return false
	}
	prev := u.powerFrac
	u.powerFrac = frac
	u.switches++
	if u.tracer != nil {
		u.tracer.Emit(obs.Event{
			Kind:  obs.KindGate,
			Cycle: cycle,
			Unit:  u.name,
			Prev:  prev,
			Next:  frac,
			Stall: stallCycles,
			Count: u.switches,
		})
	}
	return true
}

// CloseOut accumulates the final interval up to the given end cycle. The
// unit must not be used afterwards.
func (u *Unit) CloseOut(endCycle float64) {
	if u.closed {
		return
	}
	if endCycle < u.lastCycle {
		panic(fmt.Sprintf("gating: unit %q close-out before last transition", u.name))
	}
	u.residency[u.powerFrac] += endCycle - u.lastCycle
	u.lastCycle = endCycle
	u.closed = true
}

// Switches returns the number of state transitions so far.
func (u *Unit) Switches() uint64 { return u.switches }

// Residency returns the cycles spent at exactly the given power fraction.
func (u *Unit) Residency(frac float64) float64 { return u.residency[frac] }

// Levels returns the distinct power levels the unit visited, ascending.
func (u *Unit) Levels() []float64 {
	out := make([]float64, 0, len(u.residency))
	for f := range u.residency {
		out = append(out, f)
	}
	sort.Float64s(out)
	return out
}

// TotalCycles returns the cycles accounted across all levels.
func (u *Unit) TotalCycles() float64 {
	t := 0.0
	for _, c := range u.residency {
		t += c
	}
	return t
}

// GatedFrac returns the fraction of accounted cycles the unit spent in any
// state below fully-on — the quantity plotted in Figures 9, 10 and 16.
func (u *Unit) GatedFrac() float64 {
	t := u.TotalCycles()
	if t == 0 {
		return 0
	}
	return (t - u.residency[1]) / t
}

// FracBelow returns the fraction of accounted cycles spent at power levels
// strictly below the given fraction (e.g. the cycles an MLC spent 1-way
// gated are FracBelow(0.5)).
func (u *Unit) FracBelow(frac float64) float64 {
	t := u.TotalCycles()
	if t == 0 {
		return 0
	}
	sum := 0.0
	for f, c := range u.residency {
		if f < frac {
			sum += c
		}
	}
	return sum / t
}

// SwitchesPerMillionCycles returns the paper's Figure 11 metric.
func (u *Unit) SwitchesPerMillionCycles() float64 {
	t := u.TotalCycles()
	if t == 0 {
		return 0
	}
	return float64(u.switches) / t * 1e6
}
