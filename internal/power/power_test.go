package power

import (
	"math"
	"testing"
)

func almost(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d < 1e-12 || d < 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func spec() UnitSpec {
	return UnitSpec{Name: "VPU", LeakageW: 1.0, DynPerAccessJ: 1e-9, PeakDynW: 2.0, AreaFrac: 0.2}
}

func TestUnitSpecValidate(t *testing.T) {
	if err := spec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []UnitSpec{
		{},
		{Name: "x", LeakageW: -1},
		{Name: "x", DynPerAccessJ: -1},
		{Name: "x", PeakDynW: -1},
		{Name: "x", AreaFrac: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSwitchEnergy(t *testing.T) {
	s := spec()
	clock := 1e9
	// E = 2 * 0.20 * (2.0/1e9 * 0.5) = 4e-10 J
	want := 2 * SleepTransistorRatio * (s.PeakDynW / clock * SwitchingFactor)
	if got := s.SwitchEnergyJ(clock); !almost(got, want) {
		t.Fatalf("SwitchEnergyJ = %v, want %v", got, want)
	}
	if got := s.SwitchEnergyJ(0); got != 0 {
		t.Fatalf("SwitchEnergyJ at 0 Hz = %v", got)
	}
}

func TestResidencyLeakage(t *testing.T) {
	a := NewAccountant(1e9)
	a.AddUnit(spec())
	// 1e9 cycles (1 second) fully on: 1 J of leakage.
	a.AddResidency("VPU", 1, 1e9)
	// 1e9 cycles fully gated: 5% of 1 J.
	a.AddResidency("VPU", 0, 1e9)
	r := a.Report(2e9)
	u := r.Unit("VPU")
	if !almost(u.LeakageJ, 1.05) {
		t.Fatalf("LeakageJ = %v, want 1.05", u.LeakageJ)
	}
	if !almost(u.FullLeakageJ, 2.0) {
		t.Fatalf("FullLeakageJ = %v, want 2", u.FullLeakageJ)
	}
	if !almost(u.LeakSavedJ, 0.95) {
		t.Fatalf("LeakSavedJ = %v, want 0.95", u.LeakSavedJ)
	}
	if !almost(u.ResidencyCyc, 2e9) {
		t.Fatalf("ResidencyCyc = %v", u.ResidencyCyc)
	}
}

func TestFractionalResidency(t *testing.T) {
	a := NewAccountant(1e9)
	a.AddUnit(UnitSpec{Name: "MLC", LeakageW: 2.0})
	// Half the ways powered for 1 second: 2 * (0.5 + 0.5*0.05) = 1.05 J.
	a.AddResidency("MLC", 0.5, 1e9)
	u := a.Report(1e9).Unit("MLC")
	if !almost(u.LeakageJ, 1.05) {
		t.Fatalf("half-ways LeakageJ = %v, want 1.05", u.LeakageJ)
	}
}

func TestResidencyClampsPowerFrac(t *testing.T) {
	a := NewAccountant(1e9)
	a.AddUnit(spec())
	a.AddResidency("VPU", 2.0, 1e9)  // clamped to 1
	a.AddResidency("VPU", -1.0, 1e9) // clamped to 0
	u := a.Report(2e9).Unit("VPU")
	if !almost(u.LeakageJ, 1.05) {
		t.Fatalf("clamped LeakageJ = %v, want 1.05", u.LeakageJ)
	}
}

func TestAccessesEnergy(t *testing.T) {
	a := NewAccountant(1e9)
	a.AddUnit(spec())
	a.AddAccesses("VPU", 1000, 1)
	a.AddAccesses("VPU", 1000, 0.5) // way-gated accesses cost less
	u := a.Report(1e9).Unit("VPU")
	if !almost(u.DynamicJ, 1000*1e-9+1000*1e-9*0.5) {
		t.Fatalf("DynamicJ = %v", u.DynamicJ)
	}
	if u.Accesses != 2000 {
		t.Fatalf("Accesses = %d", u.Accesses)
	}
}

func TestSwitchAccounting(t *testing.T) {
	a := NewAccountant(1e9)
	a.AddUnit(spec())
	a.AddSwitch("VPU")
	a.AddSwitch("VPU")
	u := a.Report(1e9).Unit("VPU")
	if u.Transitions != 2 {
		t.Fatalf("Transitions = %d", u.Transitions)
	}
	want := 2 * spec().SwitchEnergyJ(1e9)
	if !almost(u.SwitchJ, want) {
		t.Fatalf("SwitchJ = %v, want %v", u.SwitchJ, want)
	}
}

func TestReportTotals(t *testing.T) {
	a := NewAccountant(1e9)
	a.AddUnit(UnitSpec{Name: "A", LeakageW: 1, DynPerAccessJ: 1e-9})
	a.AddUnit(UnitSpec{Name: "B", LeakageW: 3})
	a.AddResidency("A", 1, 1e9)
	a.AddResidency("B", 1, 1e9)
	a.AddAccesses("A", 1e6, 1)
	r := a.Report(1e9)
	if !almost(r.TotalEnergyJ(), 1+3+1e-3) {
		t.Fatalf("TotalEnergyJ = %v", r.TotalEnergyJ())
	}
	if !almost(r.LeakageEnergyJ(), 4) {
		t.Fatalf("LeakageEnergyJ = %v", r.LeakageEnergyJ())
	}
	if !almost(r.DynamicEnergyJ(), 1e-3) {
		t.Fatalf("DynamicEnergyJ = %v", r.DynamicEnergyJ())
	}
	if !almost(r.AvgPowerW(), 4.001) {
		t.Fatalf("AvgPowerW = %v", r.AvgPowerW())
	}
	if !almost(r.AvgLeakageW(), 4) {
		t.Fatalf("AvgLeakageW = %v", r.AvgLeakageW())
	}
}

func TestReportZeroDuration(t *testing.T) {
	a := NewAccountant(1e9)
	r := a.Report(0)
	if r.AvgPowerW() != 0 || r.AvgLeakageW() != 0 {
		t.Fatal("zero-duration power should be 0")
	}
}

func TestUnknownUnitLookup(t *testing.T) {
	a := NewAccountant(1e9)
	r := a.Report(1)
	if got := r.Unit("nope"); got.Name != "" {
		t.Fatalf("missing unit returned %+v", got)
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"bad-clock", func() { NewAccountant(0) }},
		{"dup-unit", func() {
			a := NewAccountant(1e9)
			a.AddUnit(spec())
			a.AddUnit(spec())
		}},
		{"bad-spec", func() {
			a := NewAccountant(1e9)
			a.AddUnit(UnitSpec{})
		}},
		{"unknown-unit", func() {
			a := NewAccountant(1e9)
			a.AddResidency("ghost", 1, 1)
		}},
		{"negative-residency", func() {
			a := NewAccountant(1e9)
			a.AddUnit(spec())
			a.AddResidency("VPU", 1, -1)
		}},
		{"negative-energy", func() {
			a := NewAccountant(1e9)
			a.AddUnit(spec())
			a.AddEnergy("VPU", -1)
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestGatingSavesLeakageEndToEnd(t *testing.T) {
	// A unit gated for 90% of a run should save close to 90%*95% of its
	// leakage, the arithmetic behind the paper's Figure 14.
	a := NewAccountant(2e9)
	a.AddUnit(UnitSpec{Name: "VPU", LeakageW: 1.2})
	total := 1e9
	a.AddResidency("VPU", 1, total*0.1)
	a.AddResidency("VPU", 0, total*0.9)
	u := a.Report(total).Unit("VPU")
	savedFrac := u.LeakSavedJ / u.FullLeakageJ
	if !almost(savedFrac, 0.9*0.95) {
		t.Fatalf("leak saved fraction = %v, want 0.855", savedFrac)
	}
}

func TestHardwareCostConstants(t *testing.T) {
	// The paper's reported HTB/PVT costs must stay wired to these values.
	if HTBPowerW != 0.027 || HTBAreaMM2 != 0.008 {
		t.Fatal("HTB cost constants drifted from the paper")
	}
	if HTBBytes != 1024 || PVTBytes != 264 {
		t.Fatal("HTB/PVT sizes drifted from the paper")
	}
}
