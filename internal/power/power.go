// Package power implements the simulator's energy and power accounting,
// standing in for the paper's 32 nm McPAT model.
//
// Each managed unit (VPU, BPU, MLC) and the remainder of the core carries a
// UnitSpec: a leakage budget proportional to its Table I area share, a
// per-access dynamic energy, and a peak dynamic power from which the
// power-gating switch-energy overhead is derived using the Hu et al. model
// the paper adopts (Equation 1):
//
//	E_overhead = 2 · W_H · E^S_cyc
//
// with E^S_cyc the unit's average per-cycle switching energy (peak dynamic
// power divided by clock frequency, scaled by the switching factor) and
// W_H the sleep-transistor area ratio. The paper takes W_H = 0.20 (the
// most pessimistic value in the literature's 0.05–0.20 range) and a
// switching factor of 0.5; gated units retain 5% of nominal leakage.
package power

import (
	"fmt"
	"sort"
)

// Paper model constants (Section IV-D).
const (
	// GatedLeakageFrac is the leakage a gated unit still draws.
	GatedLeakageFrac = 0.05
	// SleepTransistorRatio is W_H in Equation 1.
	SleepTransistorRatio = 0.20
	// SwitchingFactor scales peak dynamic power to average per-cycle
	// switching energy.
	SwitchingFactor = 0.5
)

// HTB/PVT hardware costs reported in Section IV-B4 (from cacti).
const (
	HTBPowerW  = 0.027
	HTBAreaMM2 = 0.008
	HTBBytes   = 1024 // 128 entries × (32-bit ID + 32-bit counter)
	PVTBytes   = 264  // 16 entries × (4×32-bit PCs + 4 policy bits)
)

// UnitSpec is the power description of one gateable unit.
type UnitSpec struct {
	// Name identifies the unit ("VPU", "BPU", "MLC", "core").
	Name string
	// LeakageW is the unit's leakage power when fully on.
	LeakageW float64
	// DynPerAccessJ is the dynamic energy of one access.
	DynPerAccessJ float64
	// PeakDynW is the unit's peak dynamic power, used for the switch
	// overhead model.
	PeakDynW float64
	// AreaFrac is the unit's share of core area (Table I), recorded for
	// reporting.
	AreaFrac float64
}

// Validate reports an error for inconsistent specs.
func (s UnitSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("power: unit spec without name")
	}
	if s.LeakageW < 0 || s.DynPerAccessJ < 0 || s.PeakDynW < 0 {
		return fmt.Errorf("power: unit %q has negative budget", s.Name)
	}
	if s.AreaFrac < 0 || s.AreaFrac > 1 {
		return fmt.Errorf("power: unit %q area fraction %v out of [0,1]", s.Name, s.AreaFrac)
	}
	return nil
}

// SwitchEnergyJ returns the energy overhead of one gating transition for
// the unit at the given clock, per Equation 1.
func (s UnitSpec) SwitchEnergyJ(clockHz float64) float64 {
	if clockHz <= 0 {
		return 0
	}
	ecyc := s.PeakDynW / clockHz * SwitchingFactor
	return 2 * SleepTransistorRatio * ecyc
}

// unitAcct accumulates one unit's energies.
type unitAcct struct {
	spec UnitSpec

	fullLeakJ   float64 // leakage the unit would have drawn always-on
	leakJ       float64 // leakage actually drawn given residency
	dynJ        float64 // dynamic energy from accesses
	switchJ     float64 // gating transition overhead energy
	accesses    uint64
	transitions uint64
	cycles      float64 // residency cycles recorded
}

// Accountant accumulates per-unit energy over a simulated run.
type Accountant struct {
	clockHz float64
	units   map[string]*unitAcct
}

// NewAccountant creates an accountant for a core at the given clock.
func NewAccountant(clockHz float64) *Accountant {
	if clockHz <= 0 {
		panic(fmt.Sprintf("power: clock %v Hz", clockHz))
	}
	return &Accountant{clockHz: clockHz, units: map[string]*unitAcct{}}
}

// ClockHz returns the accounting clock.
func (a *Accountant) ClockHz() float64 { return a.clockHz }

// AddUnit registers a unit spec. Registering the same name twice is an
// error surfaced by panic, as it indicates a mis-wired simulator.
func (a *Accountant) AddUnit(spec UnitSpec) {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if _, dup := a.units[spec.Name]; dup {
		panic(fmt.Sprintf("power: unit %q registered twice", spec.Name))
	}
	a.units[spec.Name] = &unitAcct{spec: spec}
}

func (a *Accountant) unit(name string) *unitAcct {
	u, ok := a.units[name]
	if !ok {
		panic(fmt.Sprintf("power: unknown unit %q", name))
	}
	return u
}

// AddResidency records that unit spent the given cycles with powerFrac of
// its circuits powered (1 = fully on, 0 = fully gated; the MLC uses
// fractional values for way gating). Gated circuits draw GatedLeakageFrac
// of their leakage.
func (a *Accountant) AddResidency(name string, powerFrac, cycles float64) {
	if cycles < 0 {
		panic(fmt.Sprintf("power: negative residency %v for %q", cycles, name))
	}
	if powerFrac < 0 {
		powerFrac = 0
	}
	if powerFrac > 1 {
		powerFrac = 1
	}
	u := a.unit(name)
	t := cycles / a.clockHz
	effective := powerFrac + (1-powerFrac)*GatedLeakageFrac
	u.leakJ += u.spec.LeakageW * effective * t
	u.fullLeakJ += u.spec.LeakageW * t
	u.cycles += cycles
}

// AddAccesses records n dynamic accesses to the unit at the given power
// fraction. A way-gated MLC burns proportionally less energy per access
// because fewer ways are read.
func (a *Accountant) AddAccesses(name string, n uint64, powerFrac float64) {
	if powerFrac <= 0 || powerFrac > 1 {
		powerFrac = 1
	}
	u := a.unit(name)
	u.accesses += n
	u.dynJ += float64(n) * u.spec.DynPerAccessJ * powerFrac
}

// AddSwitch records one gating transition of the unit, charging the Hu
// et al. overhead energy.
func (a *Accountant) AddSwitch(name string) {
	u := a.unit(name)
	u.transitions++
	u.switchJ += u.spec.SwitchEnergyJ(a.clockHz)
}

// AddEnergy adds raw dynamic energy to a unit (used for fixed costs such
// as the HTB/PVT structures or CDE software execution).
func (a *Accountant) AddEnergy(name string, joules float64) {
	if joules < 0 {
		panic(fmt.Sprintf("power: negative energy for %q", name))
	}
	a.unit(name).dynJ += joules
}

// UnitReport summarizes one unit's accumulated energy.
type UnitReport struct {
	Name         string
	LeakageJ     float64 // leakage drawn given gating residency
	FullLeakageJ float64 // leakage an always-on unit would have drawn
	DynamicJ     float64
	SwitchJ      float64
	Accesses     uint64
	Transitions  uint64
	ResidencyCyc float64
	LeakSavedJ   float64 // FullLeakageJ - LeakageJ
}

// TotalJ returns the unit's total energy.
func (r UnitReport) TotalJ() float64 { return r.LeakageJ + r.DynamicJ + r.SwitchJ }

// Report summarizes a run's energy and average power.
type Report struct {
	Seconds float64
	Units   []UnitReport
}

// Report closes out accounting over a run of the given length in cycles.
func (a *Accountant) Report(cycles float64) Report {
	rep := Report{Seconds: cycles / a.clockHz}
	names := make([]string, 0, len(a.units))
	for n := range a.units {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		u := a.units[n]
		rep.Units = append(rep.Units, UnitReport{
			Name:         n,
			LeakageJ:     u.leakJ,
			FullLeakageJ: u.fullLeakJ,
			DynamicJ:     u.dynJ,
			SwitchJ:      u.switchJ,
			Accesses:     u.accesses,
			Transitions:  u.transitions,
			ResidencyCyc: u.cycles,
			LeakSavedJ:   u.fullLeakJ - u.leakJ,
		})
	}
	return rep
}

// Unit returns the report entry with the given name, or a zero report.
func (r Report) Unit(name string) UnitReport {
	for _, u := range r.Units {
		if u.Name == name {
			return u
		}
	}
	return UnitReport{}
}

// TotalEnergyJ returns the whole-core energy of the run.
func (r Report) TotalEnergyJ() float64 {
	t := 0.0
	for _, u := range r.Units {
		t += u.TotalJ()
	}
	return t
}

// LeakageEnergyJ returns the whole-core leakage energy of the run.
func (r Report) LeakageEnergyJ() float64 {
	t := 0.0
	for _, u := range r.Units {
		t += u.LeakageJ
	}
	return t
}

// DynamicEnergyJ returns the whole-core dynamic (plus switch-overhead)
// energy of the run.
func (r Report) DynamicEnergyJ() float64 {
	t := 0.0
	for _, u := range r.Units {
		t += u.DynamicJ + u.SwitchJ
	}
	return t
}

// AvgPowerW returns the run's average total power.
func (r Report) AvgPowerW() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return r.TotalEnergyJ() / r.Seconds
}

// AvgLeakageW returns the run's average leakage power.
func (r Report) AvgLeakageW() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return r.LeakageEnergyJ() / r.Seconds
}
