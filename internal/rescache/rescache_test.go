package rescache

import (
	"encoding/json"
	"os"
	"reflect"
	"sync"
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
	"powerchop/internal/sim"
	"powerchop/internal/workload"
)

// testResult runs a tiny simulation so the cached payload exercises the
// full Result shape (power report, samples, unit stats) rather than a
// hand-built fixture.
func testResult(t testing.TB) *sim.Result {
	t.Helper()
	bench, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(bench.MustBuild(), sim.Config{
		Design:          arch.Server(),
		Manager:         core.MustPowerChop(core.DefaultConfig()),
		MaxTranslations: 2000,
		SampleInterval:  50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testKey() Key {
	return Key{Program: "prog-digest", Design: "server", Manager: "powerchop", Config: "translations=2000"}
}

func TestRoundTrip(t *testing.T) {
	c := New(t.TempDir(), nil)
	key := testKey()

	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	res := testResult(t)
	if err := c.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	// The payload travels as JSON, so compare the canonical encodings:
	// a loaded Result must render byte-identically to the original.
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	have, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(have) {
		t.Fatal("round-tripped result encodes differently")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 store", st)
	}
}

func TestDistinctKeysDistinctEntries(t *testing.T) {
	a := testKey()
	b := a
	b.Config = "translations=4000"
	if a.Digest() == b.Digest() {
		t.Fatal("distinct keys share a digest")
	}
	c := New(t.TempDir(), nil)
	if err := c.Put(a, testResult(t)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(b); ok {
		t.Fatal("entry for key a served for key b")
	}
}

// TestStaleEntry plants an entry whose stored digest belongs to another
// key (as after a Version bump, which moves every address): the read must
// miss and count as stale.
func TestStaleEntry(t *testing.T) {
	dir := t.TempDir()
	c := New(dir, nil)
	key := testKey()
	if err := c.Put(key, testResult(t)); err != nil {
		t.Fatal(err)
	}
	other := key
	other.Config = "translations=9999"
	if err := os.Rename(c.path(key.Digest()), c.path(other.Digest())); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(other); ok {
		t.Fatal("stale entry served")
	}
	if st := c.Stats(); st.Stale != 1 {
		t.Fatalf("stats = %+v, want 1 stale", st)
	}
}

// TestCorruptEntry covers both corruption modes: an undecodable file and
// a well-formed envelope whose payload fails its checksum.
func TestCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c := New(dir, nil)
	key := testKey()
	res := testResult(t)

	if err := os.WriteFile(c.path(key.Digest()), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("undecodable entry served")
	}

	if err := c.Put(key, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.path(key.Digest()))
	if err != nil {
		t.Fatal(err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.Result = []byte(`{"Cycles":1}`) // payload no longer matches Sum
	tampered, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(key.Digest()), tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("checksum-mismatched entry served")
	}
	if st := c.Stats(); st.Corrupt != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 corrupt, 0 hits", st)
	}
}

// TestMissingDirReadsAsMiss pins the documented lazy-directory contract.
func TestMissingDirReadsAsMiss(t *testing.T) {
	c := New("/nonexistent/rescache-test", nil)
	if _, ok := c.Get(testKey()); ok {
		t.Fatal("hit from nonexistent directory")
	}
}

// TestConcurrentAccess hammers one entry from concurrent writers and
// readers. Run under -race this checks the counters and the temp-file +
// rename protocol; every successful read must see a complete envelope.
func TestConcurrentAccess(t *testing.T) {
	c := New(t.TempDir(), nil)
	key := testKey()
	res := testResult(t)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := c.Put(key, res); err != nil {
					t.Errorf("Put: %v", err)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if got, ok := c.Get(key); ok {
					if got.Cycles != res.Cycles {
						t.Errorf("read cycles %v, want %v", got.Cycles, res.Cycles)
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestFingerprintDeterministic(t *testing.T) {
	a := Fingerprint(arch.Server())
	b := Fingerprint(arch.Server())
	if a != b {
		t.Fatal("fingerprint of identical designs differs")
	}
	if a == Fingerprint(arch.Mobile()) {
		t.Fatal("fingerprint does not distinguish designs")
	}
}

func TestResultSurvivesEnvelope(t *testing.T) {
	c := New(t.TempDir(), nil)
	key := testKey()
	res := testResult(t)
	if err := c.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Get(key)
	if got == nil {
		t.Fatal("miss")
	}
	if !reflect.DeepEqual(res.Power, got.Power) {
		t.Fatal("power report did not survive the round trip")
	}
	if res.KnownPhases != got.KnownPhases {
		t.Fatalf("KnownPhases: stored %d, loaded %d", res.KnownPhases, got.KnownPhases)
	}
}
