package rescache

import (
	"strings"
	"testing"
)

// TestCanonicalParamsEncoding pins the documented canonical encoding of
// policy parameters: sorted keys, '='-joined, 'g'-format floats, braces
// around the whole set. Cache keys embed this string, so any drift here
// silently orphans every persisted entry — the exact bytes are the
// contract.
func TestCanonicalParamsEncoding(t *testing.T) {
	cases := []struct {
		name string
		in   map[string]float64
		want string
	}{
		{"nil", nil, "{}"},
		{"empty", map[string]float64{}, "{}"},
		{"single", map[string]float64{"vpu": 0.005}, "{vpu=0.005}"},
		{"sorted keys", map[string]float64{"mlc1": 0.005, "bpu": 0.005, "vpu": 0.005, "mlc2": 0.0005},
			"{bpu=0.005,mlc1=0.005,mlc2=0.0005,vpu=0.005}"},
		{"integral floats stay short", map[string]float64{"idle-cycles": 20000}, "{idle-cycles=20000}"},
		{"negative and zero", map[string]float64{"a": -1.5, "b": 0}, "{a=-1.5,b=0}"},
	}
	// Runtime float noise must render at full round-trip precision
	// (constant folding would hide it, so compute the sum at runtime).
	x := 0.1
	x += 0.2
	cases = append(cases, struct {
		name string
		in   map[string]float64
		want string
	}{"full precision kept", map[string]float64{"x": x}, "{x=0.30000000000000004}"})
	for _, tc := range cases {
		if got := CanonicalParams(tc.in); got != tc.want {
			t.Errorf("%s: CanonicalParams(%v) = %q, want %q", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestCanonicalParamsOrderIndependent checks that insertion order never
// leaks into the encoding: many maps with identical contents built in
// different orders must render identically.
func TestCanonicalParamsOrderIndependent(t *testing.T) {
	keys := []string{"vpu", "bpu", "mlc1", "mlc2", "horizon-windows", "margin"}
	want := CanonicalParams(map[string]float64{
		"vpu": 1, "bpu": 2, "mlc1": 3, "mlc2": 4, "horizon-windows": 5, "margin": 6,
	})
	for trial := 0; trial < 50; trial++ {
		m := map[string]float64{}
		// Vary insertion order by rotating the key list.
		for i := range keys {
			k := keys[(i+trial)%len(keys)]
			m[k] = float64(1 + (indexOf(keys, k)))
		}
		if got := CanonicalParams(m); got != want {
			t.Fatalf("trial %d: %q != %q", trial, got, want)
		}
	}
}

func indexOf(ss []string, s string) int {
	for i, v := range ss {
		if v == s {
			return i
		}
	}
	return -1
}

// TestFingerprintDispatchesParamMaps pins Fingerprint's special case: a
// map[string]float64 hashes via CanonicalParams, so equal parameter sets
// fingerprint equally regardless of map internals, and distinct values
// or keys produce distinct fingerprints.
func TestFingerprintDispatchesParamMaps(t *testing.T) {
	a := Fingerprint(map[string]float64{"vpu": 0.005, "bpu": 0.005})
	b := Fingerprint(map[string]float64{"bpu": 0.005, "vpu": 0.005})
	if a != b {
		t.Fatal("equal param maps fingerprint differently")
	}
	if a == Fingerprint(map[string]float64{"vpu": 0.005, "bpu": 0.006}) {
		t.Fatal("distinct values share a fingerprint")
	}
	if a == Fingerprint(map[string]float64{"vpu": 0.005, "mlc": 0.005}) {
		t.Fatal("distinct keys share a fingerprint")
	}
	// The dispatch must produce the canonical rendering itself.
	if a != CanonicalParams(map[string]float64{"vpu": 0.005, "bpu": 0.005}) {
		t.Fatal("param-map fingerprint differs from CanonicalParams")
	}
	if strings.Contains(a, "map[") {
		t.Fatalf("fingerprint leaked Go map formatting: %q", a)
	}
}
