// Package rescache is a persistent, content-addressed cache of
// simulation results.
//
// Simulations are deterministic functions of their inputs (the guest
// program, the design point, the manager and the run shape), so a
// completed sim.Result can be reused by any later process given the same
// inputs. Each entry is keyed by a canonical SHA-256 digest over those
// inputs plus a module version tag, and stored as a JSON envelope whose
// payload carries its own checksum. Writes go through a temp file and an
// atomic rename, so concurrent writers and crashed processes can never
// leave a partially written entry in place; reads verify the envelope's
// digest and payload checksum and treat any corrupt or stale entry as a
// miss. Go's float64 JSON encoding is exact (shortest round-trip form),
// so a cached Result renders figures byte-identically to a fresh run.
//
// Hit/miss/store/bypass counters register in the provided obs.Registry,
// so a live monitor's /metrics endpoint exposes cache behaviour.
package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"powerchop/internal/obs"
	"powerchop/internal/sim"
)

// Version tags every entry with the cache-format-and-simulator
// generation. Bump it whenever a change alters simulation results or the
// envelope layout: older entries then read as stale and re-simulate.
const Version = "powerchop-rescache-v1"

// Key identifies one simulation's inputs. Each field is a canonical
// string: Program a program content digest (program.Digest), Design and
// Manager deterministic fingerprints of the design point and manager
// configuration, Config the run shape (translations, sampling, quality
// tracking).
type Key struct {
	Program string
	Design  string
	Manager string
	Config  string
}

// Digest returns the entry address: a SHA-256 over the labeled key
// fields and the module version.
func (k Key) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "version=%s\nprogram=%s\ndesign=%s\nmanager=%s\nconfig=%s\n",
		Version, k.Program, k.Design, k.Manager, k.Config)
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint renders a value into a deterministic string for a Key
// field. Plain structs of scalars, strings, slices and nested such
// structs (e.g. arch.Design) render via Go syntax, which is stable for
// those shapes. Float-keyed parameter maps (policy parameter sets) are
// rendered through CanonicalParams — Go map iteration order would
// otherwise make the key nondeterministic. Other map-bearing values
// still have no deterministic rendering and must not be fingerprinted.
func Fingerprint(v any) string {
	if m, ok := v.(map[string]float64); ok {
		return CanonicalParams(m)
	}
	return fmt.Sprintf("%#v", v)
}

// CanonicalParams renders a policy parameter map in the cache's
// canonical form: "{k1=v1,k2=v2}" with keys sorted lexically and each
// value formatted by strconv.FormatFloat(v, 'g', -1, 64) — the shortest
// decimal string that round-trips the exact float64. The encoding is a
// pure function of the map's contents: insertion order, map identity
// and nil-vs-empty all render identically ("{}" for both nil and
// empty), so map-backed parameter sets can never split or alias cache
// entries nondeterministically.
func CanonicalParams(params map[string]float64) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(params[k], 'g', -1, 64))
	}
	b.WriteByte('}')
	return b.String()
}

// envelope is the on-disk entry format.
type envelope struct {
	// Digest is the key digest the entry was stored under; a mismatch
	// with the requesting key means the file is stale or misplaced.
	Digest string `json:"digest"`
	// Version is the cache generation that wrote the entry.
	Version string `json:"version"`
	// Sum is the SHA-256 of the Result payload bytes.
	Sum string `json:"sum"`
	// Result is the marshaled sim.Result.
	Result json.RawMessage `json:"result"`
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Stores  uint64
	Corrupt uint64
	Stale   uint64
	Bypass  uint64
	Errors  uint64
}

// Cache is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use by multiple goroutines and
// multiple processes sharing the directory.
type Cache struct {
	dir string

	hits    *obs.Counter
	misses  *obs.Counter
	stores  *obs.Counter
	corrupt *obs.Counter
	stale   *obs.Counter
	bypass  *obs.Counter
	errors  *obs.Counter
}

// New opens a cache rooted at dir, registering its counters in reg (a
// private registry when nil). The directory is created lazily on the
// first store; a missing or unreadable directory simply yields misses,
// so opening never fails — callers that want early validation should
// create the directory themselves.
func New(dir string, reg *obs.Registry) *Cache {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Cache{
		dir:     dir,
		hits:    reg.Counter("rescache.hit"),
		misses:  reg.Counter("rescache.miss"),
		stores:  reg.Counter("rescache.store"),
		corrupt: reg.Counter("rescache.corrupt"),
		stale:   reg.Counter("rescache.stale"),
		bypass:  reg.Counter("rescache.bypass"),
		errors:  reg.Counter("rescache.error"),
	}
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Value(),
		Misses:  c.misses.Value(),
		Stores:  c.stores.Value(),
		Corrupt: c.corrupt.Value(),
		Stale:   c.stale.Value(),
		Bypass:  c.bypass.Value(),
		Errors:  c.errors.Value(),
	}
}

// CountBypass records that a run skipped the cache (e.g. because an
// event-stream consumer was attached, which a cached result cannot
// replay).
func (c *Cache) CountBypass() { c.bypass.Inc() }

// path returns the entry file for a key digest.
func (c *Cache) path(digest string) string {
	return filepath.Join(c.dir, digest+".json")
}

// Get loads the entry for key, verifying the envelope before trusting
// it. Any absent, stale (digest or version mismatch) or corrupt
// (undecodable, checksum mismatch) entry reads as a miss.
func (c *Cache) Get(key Key) (*sim.Result, bool) {
	digest := key.Digest()
	data, err := os.ReadFile(c.path(digest))
	if err != nil {
		c.misses.Inc()
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		c.corrupt.Inc()
		c.misses.Inc()
		return nil, false
	}
	if env.Digest != digest || env.Version != Version {
		c.stale.Inc()
		c.misses.Inc()
		return nil, false
	}
	if payloadSum(env.Result) != env.Sum {
		c.corrupt.Inc()
		c.misses.Inc()
		return nil, false
	}
	var res sim.Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		c.corrupt.Inc()
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	return &res, true
}

// Put stores the result under key. The entry is written to a temp file
// in the cache directory and moved into place with an atomic rename;
// concurrent writers of the same key both succeed and leave identical
// content. Failures are counted and returned, but callers normally treat
// the cache as best-effort and ignore them.
func (c *Cache) Put(key Key, res *sim.Result) error {
	payload, err := json.Marshal(res)
	if err != nil {
		c.errors.Inc()
		return fmt.Errorf("rescache: encoding result: %w", err)
	}
	env := envelope{
		Digest:  key.Digest(),
		Version: Version,
		Sum:     payloadSum(payload),
		Result:  payload,
	}
	data, err := json.Marshal(&env)
	if err != nil {
		c.errors.Inc()
		return fmt.Errorf("rescache: encoding envelope: %w", err)
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		c.errors.Inc()
		return fmt.Errorf("rescache: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, ".rescache-*.tmp")
	if err != nil {
		c.errors.Inc()
		return fmt.Errorf("rescache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		c.errors.Inc()
		return fmt.Errorf("rescache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		c.errors.Inc()
		return fmt.Errorf("rescache: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(env.Digest)); err != nil {
		os.Remove(tmp.Name())
		c.errors.Inc()
		return fmt.Errorf("rescache: %w", err)
	}
	c.stores.Inc()
	return nil
}

// payloadSum is the checksum stored alongside (and verified against) the
// Result payload.
func payloadSum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
