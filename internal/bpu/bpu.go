// Package bpu implements the branch prediction unit of the simulated core:
// a small always-on local predictor and a large tournament predictor that
// PowerChop can power gate.
//
// The paper's design points (Table I) pair a local/global tournament
// predictor (4K/2K-entry BTB, 16K/8K-entry chooser) with a gated-off
// fallback of "local only, 1K/512-entry BTB". This package models both:
//
//   - Bimodal: 2-bit saturating counters indexed by PC plus a small BTB —
//     the fallback predictor that stays powered when the BPU is gated.
//   - Tournament: a McFarling combining predictor — a large local
//     direction table, a gshare global component, a chooser array and a
//     large BTB — the structure PowerChop gates off, losing its state
//     ("lose global, chooser and BTB state, rewarm").
//
// Predictions count as correct only when the direction is right and, for
// taken branches, the BTB holds the target; a BTB miss on a taken branch
// redirects fetch just like a direction mispredict.
package bpu

import "fmt"

// Predictor is the interface shared by the small and large predictors.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc and
	// whether the predictor can supply the target on a taken prediction.
	Predict(pc uint32) (taken, targetKnown bool)
	// Update trains the predictor with the resolved outcome.
	Update(pc uint32, taken bool)
	// Access performs Predict followed by Update and reports whether the
	// prediction was correct (direction right, and target known whenever
	// the branch was actually taken).
	Access(pc uint32, taken bool) bool
	// Reset clears all state, modelling retention loss on power gating.
	Reset()
	// Name identifies the predictor in diagnostics.
	Name() string
}

// counter is a 2-bit saturating counter helper.
func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			c++
		}
	} else if c > 0 {
		c--
	}
	return c
}

func takenOf(c uint8) bool { return c >= 2 }

// BTB is a direct-mapped branch target buffer. Only presence is modelled:
// the simulator cares whether the target is available, not its value.
type BTB struct {
	tags []uint32
}

// NewBTB returns a BTB with n entries; n must be a power of two.
func NewBTB(n int) *BTB {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("bpu: BTB size %d is not a positive power of two", n))
	}
	b := &BTB{tags: make([]uint32, n)}
	b.Reset()
	return b
}

// Lookup reports whether the BTB holds an entry for pc.
func (b *BTB) Lookup(pc uint32) bool {
	return b.tags[b.index(pc)] == pc
}

// Insert records pc in the BTB.
func (b *BTB) Insert(pc uint32) {
	b.tags[b.index(pc)] = pc
}

// Reset clears the BTB (state loss on gating).
func (b *BTB) Reset() {
	for i := range b.tags {
		b.tags[i] = invalidTag
	}
}

// Size returns the entry count.
func (b *BTB) Size() int { return len(b.tags) }

const invalidTag = ^uint32(0)

func (b *BTB) index(pc uint32) uint32 {
	// Hash the PC: the synthetic guest lays regions out at regular 4KB
	// strides, which raw low-order bits would alias pathologically;
	// hashing models the irregular layout of real code.
	return hashPC(pc) & uint32(len(b.tags)-1)
}

// hashPC spreads PCs across predictor tables.
func hashPC(pc uint32) uint32 {
	x := pc >> 2
	x ^= x >> 7
	x *= 0x9e3779b1
	return x
}

// Bimodal is the small local predictor: per-PC 2-bit counters plus a small
// BTB. It stays powered when the large BPU is gated off.
type Bimodal struct {
	table []uint8
	btb   *BTB
}

// NewBimodal returns a bimodal predictor with the given counter-table and
// BTB sizes (both powers of two).
func NewBimodal(entries, btbEntries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("bpu: bimodal size %d is not a positive power of two", entries))
	}
	b := &Bimodal{table: make([]uint8, entries), btb: NewBTB(btbEntries)}
	b.Reset()
	return b
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "small-local" }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint32) (bool, bool) {
	taken := takenOf(b.table[hashPC(pc)&uint32(len(b.table)-1)])
	return taken, b.btb.Lookup(pc)
}

// Update implements Predictor.
func (b *Bimodal) Update(pc uint32, taken bool) {
	i := hashPC(pc) & uint32(len(b.table)-1)
	b.table[i] = bump(b.table[i], taken)
	if taken {
		b.btb.Insert(pc)
	}
}

// Access implements Predictor.
func (b *Bimodal) Access(pc uint32, taken bool) bool {
	pred, known := b.Predict(pc)
	b.Update(pc, taken)
	if pred != taken {
		return false
	}
	return !taken || known
}

// Reset implements Predictor. Counters initialize to weakly-not-taken.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
	b.btb.Reset()
}

// TournamentConfig sizes the large predictor's structures (a McFarling
// combining predictor: a large per-PC local table, a gshare global
// component, and a chooser). All sizes must be powers of two.
type TournamentConfig struct {
	LocalSize      int // local direction table (2-bit counters)
	GlobalSize     int // gshare table (2-bit counters)
	GlobalHistBits int // global history length
	ChooserSize    int // chooser table (2-bit counters)
	BTBEntries     int // large BTB
}

// Validate reports an error for inconsistent configurations.
func (c TournamentConfig) Validate() error {
	pow2 := func(name string, v int) error {
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf("bpu: %s = %d is not a positive power of two", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"LocalSize", c.LocalSize},
		{"GlobalSize", c.GlobalSize},
		{"ChooserSize", c.ChooserSize},
		{"BTBEntries", c.BTBEntries},
	} {
		if err := pow2(f.name, f.v); err != nil {
			return err
		}
	}
	if c.GlobalHistBits <= 0 || c.GlobalHistBits > 30 {
		return fmt.Errorf("bpu: GlobalHistBits = %d out of (0,30]", c.GlobalHistBits)
	}
	return nil
}

// Tournament is the large local/global tournament predictor.
type Tournament struct {
	cfg     TournamentConfig
	local   []uint8
	global  []uint8
	chooser []uint8
	ghr     uint32
	btb     *BTB
}

// NewTournament returns a tournament predictor for the configuration. It
// panics on invalid configurations; use cfg.Validate to check first.
func NewTournament(cfg TournamentConfig) *Tournament {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &Tournament{
		cfg:     cfg,
		local:   make([]uint8, cfg.LocalSize),
		global:  make([]uint8, cfg.GlobalSize),
		chooser: make([]uint8, cfg.ChooserSize),
		btb:     NewBTB(cfg.BTBEntries),
	}
	t.Reset()
	return t
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "large-tournament" }

func (t *Tournament) localIndex(pc uint32) uint32 {
	return hashPC(pc) & uint32(len(t.local)-1)
}

func (t *Tournament) globalIndex(pc uint32) uint32 {
	hist := t.ghr & (1<<uint(t.cfg.GlobalHistBits) - 1)
	return (hist ^ hashPC(pc)) & uint32(len(t.global)-1)
}

func (t *Tournament) chooserIndex(pc uint32) uint32 {
	return (t.ghr ^ hashPC(pc)>>1) & uint32(len(t.chooser)-1)
}

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint32) (bool, bool) {
	localPred := takenOf(t.local[t.localIndex(pc)])
	globalPred := takenOf(t.global[t.globalIndex(pc)])
	useGlobal := takenOf(t.chooser[t.chooserIndex(pc)])
	pred := localPred
	if useGlobal {
		pred = globalPred
	}
	return pred, t.btb.Lookup(pc)
}

// Update implements Predictor.
func (t *Tournament) Update(pc uint32, taken bool) {
	lIdx := t.localIndex(pc)
	localPred := takenOf(t.local[lIdx])
	gIdx := t.globalIndex(pc)
	globalPred := takenOf(t.global[gIdx])
	cIdx := t.chooserIndex(pc)

	// Train the chooser toward the component that was right, when they
	// disagree.
	if localPred != globalPred {
		t.chooser[cIdx] = bump(t.chooser[cIdx], globalPred == taken)
	}
	t.local[lIdx] = bump(t.local[lIdx], taken)
	t.global[gIdx] = bump(t.global[gIdx], taken)
	t.ghr = t.ghr<<1 | uint32(bit(taken))
	if taken {
		t.btb.Insert(pc)
	}
}

// Access implements Predictor.
func (t *Tournament) Access(pc uint32, taken bool) bool {
	pred, known := t.Predict(pc)
	t.Update(pc, taken)
	if pred != taken {
		return false
	}
	return !taken || known
}

// Reset implements Predictor, modelling the loss of global, chooser, local
// and BTB state when the unit is power gated.
func (t *Tournament) Reset() {
	for i := range t.local {
		t.local[i] = 1
	}
	for i := range t.global {
		t.global[i] = 1
	}
	for i := range t.chooser {
		t.chooser[i] = 1 // weakly prefer local
	}
	t.ghr = 0
	t.btb.Reset()
}

func bit(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// Unit is the complete BPU as the core sees it: the small predictor is
// always powered; the large predictor can be gated off, losing its state.
type Unit struct {
	Small *Bimodal
	Large *Tournament

	largeOn bool
}

// Config sizes a BPU unit.
type Config struct {
	SmallEntries  int // small predictor counter table
	SmallBTB      int // small predictor BTB
	Large         TournamentConfig
	LargeOnAtBoot bool
}

// ServerConfig mirrors Table I's server design point: loc/glob tournament,
// 4K-entry BTB, 16K-entry chooser; fallback local-only with 1K-entry BTB.
func ServerConfig() Config {
	return Config{
		SmallEntries: 2048,
		SmallBTB:     1024,
		Large: TournamentConfig{
			LocalSize:      8192,
			GlobalSize:     16384,
			GlobalHistBits: 12,
			ChooserSize:    16384,
			BTBEntries:     4096,
		},
		LargeOnAtBoot: true,
	}
}

// MobileConfig mirrors Table I's mobile design point: loc/glob tournament,
// 2K-entry BTB, 8K-entry chooser; fallback local-only with 512-entry BTB.
func MobileConfig() Config {
	return Config{
		SmallEntries: 1024,
		SmallBTB:     512,
		Large: TournamentConfig{
			LocalSize:      4096,
			GlobalSize:     8192,
			GlobalHistBits: 12,
			ChooserSize:    8192,
			BTBEntries:     2048,
		},
		LargeOnAtBoot: true,
	}
}

// NewUnit builds the BPU for a configuration.
func NewUnit(cfg Config) *Unit {
	return &Unit{
		Small:   NewBimodal(cfg.SmallEntries, cfg.SmallBTB),
		Large:   NewTournament(cfg.Large),
		largeOn: cfg.LargeOnAtBoot,
	}
}

// LargeOn reports whether the large predictor is currently powered.
func (u *Unit) LargeOn() bool { return u.largeOn }

// SetLargeOn powers the large predictor on or off. Gating it off loses its
// state; it comes back cold ("rewarm").
func (u *Unit) SetLargeOn(on bool) {
	if u.largeOn && !on {
		u.Large.Reset()
	}
	u.largeOn = on
}

// Access resolves one branch through the active predictor and reports
// whether the prediction was correct. The small predictor always trains so
// that its state is warm whenever the large one is gated, matching a
// hardware local predictor that is never powered down.
func (u *Unit) Access(pc uint32, taken bool) bool {
	smallCorrect := u.Small.Access(pc, taken)
	if !u.largeOn {
		return smallCorrect
	}
	return u.Large.Access(pc, taken)
}

// Active returns the predictor currently steering fetch.
func (u *Unit) Active() Predictor {
	if u.largeOn {
		return u.Large
	}
	return u.Small
}
