package bpu

import (
	"testing"

	"powerchop/internal/isa"
	"powerchop/internal/program"
	"powerchop/internal/rng"
)

// drive measures a predictor's accuracy on n outcomes from a branch model,
// after a warmup of the same length.
func drive(t *testing.T, p Predictor, m program.BranchModel, pc uint32, n int) float64 {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("branch model: %v", err)
	}
	// Use a walker-like harness: single branch with a global history that
	// the predictor itself must discover.
	prog := singleBranchProgram(t, m)
	w := program.MustWalker(prog)
	for i := 0; i < n; i++ { // warmup
		ri := w.Next()
		p.Access(pc, w.BranchOutcome(ri, 0))
	}
	correct := 0
	for i := 0; i < n; i++ {
		ri := w.Next()
		if p.Access(pc, w.BranchOutcome(ri, 0)) {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

func singleBranchProgram(t *testing.T, m program.BranchModel) *program.Program {
	t.Helper()
	b := program.NewBuilder("bench", "TEST", 11)
	ri := b.Region(program.RegionSpec{
		Name:     "b",
		Insns:    4,
		Mix:      isa.Mix{BranchFrac: 0.25},
		Branches: []program.BranchModel{m},
	})
	b.Phase("p", 1<<30, map[int]float64{ri: 1})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBTBBasics(t *testing.T) {
	b := NewBTB(16)
	if b.Lookup(0x100) {
		t.Fatal("empty BTB hit")
	}
	b.Insert(0x100)
	if !b.Lookup(0x100) {
		t.Fatal("inserted entry missing")
	}
	// A conflicting PC (same index, different tag) evicts.
	conflict := uint32(0x100 + 16*4)
	b.Insert(conflict)
	if b.Lookup(0x100) {
		t.Fatal("conflicting insert did not evict")
	}
	if !b.Lookup(conflict) {
		t.Fatal("conflicting entry missing")
	}
	b.Reset()
	if b.Lookup(conflict) {
		t.Fatal("Reset did not clear BTB")
	}
	if b.Size() != 16 {
		t.Fatalf("Size = %d", b.Size())
	}
}

func TestBTBPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBTB(%d) did not panic", n)
				}
			}()
			NewBTB(n)
		}()
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p := NewBimodal(1024, 1024)
	acc := drive(t, p, program.BranchModel{Kind: program.Biased, Bias: 0.95}, 0x40, 4000)
	if acc < 0.90 {
		t.Fatalf("bimodal accuracy on 95%%-biased branch = %.3f, want >= 0.90", acc)
	}
}

func TestBimodalFailsOnPattern(t *testing.T) {
	p := NewBimodal(1024, 1024)
	// Alternating pattern defeats a 2-bit counter.
	acc := drive(t, p, program.BranchModel{Kind: program.Patterned, Pattern: []bool{true, false}}, 0x40, 4000)
	if acc > 0.6 {
		t.Fatalf("bimodal accuracy on T/NT pattern = %.3f, want <= 0.6", acc)
	}
}

func TestTournamentLearnsPattern(t *testing.T) {
	p := NewTournament(ServerConfig().Large)
	acc := drive(t, p, program.BranchModel{Kind: program.Patterned,
		Pattern: []bool{true, true, false, true, false, false}}, 0x40, 6000)
	if acc < 0.95 {
		t.Fatalf("tournament accuracy on period-6 pattern = %.3f, want >= 0.95", acc)
	}
}

func TestTournamentLearnsGlobalCorrelation(t *testing.T) {
	// Correlated outcomes depend on global history; only the tournament's
	// global component can track them. Use two interleaved branches so the
	// global history is informative.
	cfg := ServerConfig()
	small := NewBimodal(cfg.SmallEntries, cfg.SmallBTB)
	large := NewTournament(cfg.Large)

	b := program.NewBuilder("corr", "TEST", 13)
	ri := b.Region(program.RegionSpec{
		Name:  "r",
		Insns: 8,
		Mix:   isa.Mix{BranchFrac: 0.5},
		Branches: []program.BranchModel{
			{Kind: program.Random},
			{Kind: program.Correlated, CorrDepth: 3},
		},
	})
	b.Phase("p", 1<<30, map[int]float64{ri: 1})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := program.MustWalker(prog)
	region := prog.Regions[ri]

	var smallCorrect, largeCorrect, total int
	for exec := 0; exec < 4000; exec++ {
		w.Next()
		for _, inst := range region.Body {
			if inst.Kind.String() != "branch" {
				continue
			}
			taken := w.BranchOutcome(ri, inst.Sel)
			sc := small.Access(inst.PC, taken)
			lc := large.Access(inst.PC, taken)
			if exec > 2000 && inst.Sel == 1 { // measure the correlated branch post-warmup
				total++
				if sc {
					smallCorrect++
				}
				if lc {
					largeCorrect++
				}
			}
		}
	}
	smallAcc := float64(smallCorrect) / float64(total)
	largeAcc := float64(largeCorrect) / float64(total)
	if largeAcc < smallAcc+0.2 {
		t.Fatalf("tournament accuracy %.3f not clearly above bimodal %.3f on correlated branch",
			largeAcc, smallAcc)
	}
}

func TestTournamentConfigValidate(t *testing.T) {
	good := ServerConfig().Large
	if err := good.Validate(); err != nil {
		t.Fatalf("server config invalid: %v", err)
	}
	bad := []func(*TournamentConfig){
		func(c *TournamentConfig) { c.LocalSize = 3 },
		func(c *TournamentConfig) { c.GlobalSize = -4 },
		func(c *TournamentConfig) { c.ChooserSize = 7 },
		func(c *TournamentConfig) { c.BTBEntries = 6 },
		func(c *TournamentConfig) { c.GlobalHistBits = 0 },
		func(c *TournamentConfig) { c.GlobalHistBits = 31 },
	}
	for i, mutate := range bad {
		c := ServerConfig().Large
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewTournamentPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTournament with invalid config did not panic")
		}
	}()
	NewTournament(TournamentConfig{})
}

func TestResetLosesState(t *testing.T) {
	p := NewTournament(MobileConfig().Large)
	pc := uint32(0x80)
	for i := 0; i < 100; i++ {
		p.Update(pc, true)
	}
	if pred, known := p.Predict(pc); !pred || !known {
		t.Fatal("predictor did not learn always-taken")
	}
	p.Reset()
	if _, known := p.Predict(pc); known {
		t.Fatal("Reset kept BTB state")
	}
	// After reset the pattern table is weakly-not-taken.
	if pred, _ := p.Predict(pc); pred {
		t.Fatal("Reset kept direction state")
	}
}

func TestBTBMissCountsAsMispredict(t *testing.T) {
	p := NewBimodal(64, 64)
	pc := uint32(0x10)
	// Train direction taken, but then evict the BTB entry with a conflict.
	for i := 0; i < 8; i++ {
		p.Update(pc, true)
	}
	conflict := pc + 64*4
	p.btb.Insert(conflict)
	if ok := p.Access(pc, true); ok {
		t.Fatal("taken branch without BTB entry counted as correct")
	}
	// Not-taken predictions never need the BTB.
	p2 := NewBimodal(64, 64)
	if ok := p2.Access(0x20, false); !ok {
		t.Fatal("not-taken branch predicted not-taken should be correct without BTB")
	}
}

func TestUnitGating(t *testing.T) {
	u := NewUnit(MobileConfig())
	if !u.LargeOn() {
		t.Fatal("large predictor should boot on")
	}
	if u.Active() != u.Large {
		t.Fatal("active predictor should be the tournament at boot")
	}
	// Train the large predictor, then gate it off; state must be lost.
	pc := uint32(0x44)
	for i := 0; i < 50; i++ {
		u.Access(pc, true)
	}
	u.SetLargeOn(false)
	if u.Active() != Predictor(u.Small) {
		t.Fatal("active predictor should be the bimodal when gated")
	}
	if pred, _ := u.Large.Predict(pc); pred {
		t.Fatal("gating off did not reset the large predictor")
	}
	// The small predictor kept training while the large one was active.
	if pred, known := u.Small.Predict(pc); !pred || !known {
		t.Fatal("small predictor was not kept warm")
	}
	u.SetLargeOn(true)
	if u.Active() != Predictor(u.Large) {
		t.Fatal("active predictor should be the tournament after re-gating on")
	}
}

func TestUnitAccessUsesActivePredictor(t *testing.T) {
	u := NewUnit(MobileConfig())
	u.SetLargeOn(false)
	pc := uint32(0x60)
	for i := 0; i < 20; i++ {
		u.Access(pc, true)
	}
	// With the small predictor warm, accuracy via the unit should be high.
	correct := 0
	for i := 0; i < 100; i++ {
		if u.Access(pc, true) {
			correct++
		}
	}
	if correct < 95 {
		t.Fatalf("unit accuracy through small predictor = %d/100", correct)
	}
}

func TestPredictorNames(t *testing.T) {
	if NewBimodal(64, 64).Name() != "small-local" {
		t.Error("bimodal name")
	}
	if NewTournament(MobileConfig().Large).Name() != "large-tournament" {
		t.Error("tournament name")
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	p := NewTournament(ServerConfig().Large)
	acc := drive(t, p, program.BranchModel{Kind: program.Random}, 0x90, 4000)
	if acc > 0.65 {
		t.Fatalf("tournament accuracy on random branch = %.3f, want near 0.5", acc)
	}
	_ = rng.New(0) // keep the import honest if drive changes
}
