// Package vpu models the vector processing unit: an N-wide SIMD engine
// with an architecturally visible register file.
//
// PowerChop gates the VPU off during phases of low vector criticality. A
// gated VPU loses nothing silently: its register file is explicitly saved
// to memory on gate-off and restored on gate-on (the paper charges 500
// cycles per transition for this), and while the unit is off the binary
// translator emits scalar-emulation code paths, so each guest vector
// instruction expands into Width scalar operations instead of touching the
// VPU.
package vpu

import "fmt"

// Config sizes the VPU.
type Config struct {
	// Width is the SIMD width in scalar lanes (4 for the server design
	// point, 2 for mobile).
	Width int
	// SaveRestoreCycles is the stall charged when the register file is
	// saved or restored across a gating transition (paper: 500).
	SaveRestoreCycles float64
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	if c.Width < 1 || c.Width > 64 {
		return fmt.Errorf("vpu: width %d out of [1,64]", c.Width)
	}
	if c.SaveRestoreCycles < 0 {
		return fmt.Errorf("vpu: negative save/restore cost %v", c.SaveRestoreCycles)
	}
	return nil
}

// Unit is the VPU's power and accounting state.
type Unit struct {
	cfg Config
	on  bool

	vectorOps    uint64 // vector instructions executed on the unit
	emulatedOps  uint64 // vector instructions emulated in scalar code
	saveRestores uint64 // register-file spill/fill events
}

// New returns a powered-on VPU. It panics on an invalid configuration; use
// Config.Validate to check first.
func New(cfg Config) *Unit {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Unit{cfg: cfg, on: true}
}

// Config returns the unit configuration.
func (u *Unit) Config() Config { return u.cfg }

// On reports whether the unit is powered.
func (u *Unit) On() bool { return u.on }

// SetOn powers the unit on or off, returning the stall cycles charged for
// the register-file save (gate-off) or restore (gate-on). Setting the
// current state is free.
func (u *Unit) SetOn(on bool) (stall float64) {
	if u.on == on {
		return 0
	}
	u.on = on
	u.saveRestores++
	return u.cfg.SaveRestoreCycles
}

// Execute accounts for one guest vector instruction and returns the number
// of scalar-pipeline issue slots it occupies: 1 when the VPU executes it,
// Width when the BT's scalar-emulation path runs instead.
func (u *Unit) Execute() (issueSlots int) {
	if u.on {
		u.vectorOps++
		return 1
	}
	u.emulatedOps++
	return u.cfg.Width
}

// VectorOps returns the count of vector instructions executed on the unit.
func (u *Unit) VectorOps() uint64 { return u.vectorOps }

// EmulatedOps returns the count of vector instructions scalar-emulated.
func (u *Unit) EmulatedOps() uint64 { return u.emulatedOps }

// SaveRestores returns the number of register-file spill/fill events.
func (u *Unit) SaveRestores() uint64 { return u.saveRestores }
