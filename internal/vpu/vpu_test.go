package vpu

import "testing"

func TestConfigValidate(t *testing.T) {
	good := Config{Width: 4, SaveRestoreCycles: 500}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Width: 0},
		{Width: 128},
		{Width: 4, SaveRestoreCycles: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{})
}

func TestExecuteOnUnit(t *testing.T) {
	u := New(Config{Width: 4, SaveRestoreCycles: 500})
	if !u.On() {
		t.Fatal("unit should boot powered on")
	}
	if slots := u.Execute(); slots != 1 {
		t.Fatalf("powered execute slots = %d, want 1", slots)
	}
	if u.VectorOps() != 1 || u.EmulatedOps() != 0 {
		t.Fatalf("counters = %d/%d", u.VectorOps(), u.EmulatedOps())
	}
}

func TestExecuteEmulated(t *testing.T) {
	u := New(Config{Width: 4, SaveRestoreCycles: 500})
	u.SetOn(false)
	if slots := u.Execute(); slots != 4 {
		t.Fatalf("emulated execute slots = %d, want width 4", slots)
	}
	if u.VectorOps() != 0 || u.EmulatedOps() != 1 {
		t.Fatalf("counters = %d/%d", u.VectorOps(), u.EmulatedOps())
	}
}

func TestSaveRestoreCharging(t *testing.T) {
	u := New(Config{Width: 2, SaveRestoreCycles: 500})
	if stall := u.SetOn(true); stall != 0 {
		t.Fatalf("no-op transition charged %v cycles", stall)
	}
	if stall := u.SetOn(false); stall != 500 {
		t.Fatalf("gate-off stall = %v, want 500", stall)
	}
	if stall := u.SetOn(true); stall != 500 {
		t.Fatalf("gate-on stall = %v, want 500", stall)
	}
	if got := u.SaveRestores(); got != 2 {
		t.Fatalf("save/restore count = %d, want 2", got)
	}
}
