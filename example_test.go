package powerchop_test

import (
	"fmt"

	"powerchop"
)

// The benchmark registry mirrors the paper's evaluation: 29 applications
// across four suites.
func ExampleBenchmarks() {
	names := powerchop.Benchmarks()
	fmt.Println(len(names), "benchmarks")
	suite, _ := powerchop.SuiteOf("gobmk")
	fmt.Println("gobmk is in", suite)
	// Output:
	// 29 benchmarks
	// gobmk is in SPEC-INT
}

// Every table and figure of the paper regenerates by id.
func ExampleFigureIDs() {
	for _, id := range powerchop.FigureIDs()[:5] {
		title, _ := powerchop.FigureTitle(id)
		fmt.Println(id, "-", title)
	}
	// Output:
	// table1 - Table I: architectural design points
	// fig1 - Figure 1: gobmk vector intensity over time
	// fig2 - Figure 2: small vs large BPU IPC on msn
	// fig3 - Figure 3: 1-way vs 8-way MLC IPC on GemsFDTD
	// fig8 - Figure 8: phase signature quality
}

// Run simulates one benchmark; results are deterministic, so the headline
// facts of a run are stable across machines.
func ExampleRun() {
	rep, err := powerchop.Run("namd", powerchop.Options{Passes: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s on %s core under %s\n", rep.Benchmark, rep.Arch, rep.Manager)
	fmt.Printf("VPU gated more than 80%%: %v\n", rep.VPU.GatedFrac > 0.8)
	// Output:
	// namd on server core under powerchop
	// VPU gated more than 80%: true
}
