package powerchop

import (
	"context"
	"fmt"
	"io"
	"sync"

	"powerchop/internal/experiments"
	"powerchop/internal/obs"
	"powerchop/internal/obs/span"
	"powerchop/internal/rescache"
	"powerchop/internal/workload"
)

// FigureRunner regenerates the paper's tables and figures. It memoizes the
// underlying simulations, so rendering every figure costs roughly one
// sweep of the benchmark suite per configuration; with more than one job
// it renders figures concurrently, deduplicating shared runs, while
// producing output byte-identical to a serial render.
type FigureRunner struct {
	runner *experiments.Runner
	jobs   int
}

// FigureOption configures a FigureRunner.
type FigureOption func(*figureConfig)

type figureConfig struct {
	jobs     int
	batch    int
	tracer   obs.Tracer
	progress func(RunProgress)
	cache    *rescache.Cache
}

// WithBatch caps how many cold lanes a batch-aware sweep (currently the
// policy-zoo figure) hands to one batched simulation: 0 selects the
// default cap, 1 disables batching. A pure wall-clock knob — figure
// output is byte-identical at any setting.
func WithBatch(n int) FigureOption {
	return func(c *figureConfig) { c.batch = n }
}

// WithJobs bounds the number of concurrent simulations (and, when above
// one, enables concurrent figure rendering). n <= 0 selects GOMAXPROCS.
func WithJobs(n int) FigureOption {
	return func(c *figureConfig) { c.jobs = n }
}

// WithTracer attaches an event sink to every simulation the runner
// launches. Simulations run concurrently, so the tracer must be safe for
// concurrent emission (obs/serve's fan-out hub and the metrics collector
// both are). Figure output stays byte-identical with or without it.
func WithTracer(t obs.Tracer) FigureOption {
	return func(c *figureConfig) { c.tracer = t }
}

// WithProgress registers a callback for run lifecycle updates: queued
// when a (benchmark, kind) run is registered, simulating with live
// counters at every window boundary, done or error at completion.
// Callbacks arrive concurrently from the simulating goroutines.
func WithProgress(fn func(RunProgress)) FigureOption {
	return func(c *figureConfig) { c.progress = fn }
}

// WithCache attaches a persistent result cache: every canonical run the
// runner launches is looked up before simulating and stored after. A
// warm cache renders the full figure set byte-identically to a cold run
// at a fraction of the cost. When a tracer is also attached the cache is
// bypassed (and the bypass counted) — cached results cannot replay the
// event stream.
func WithCache(c *rescache.Cache) FigureOption {
	return func(fc *figureConfig) { fc.cache = c }
}

// WithCacheDir is WithCache with a cache opened at dir, its counters in a
// private registry. Use WithCache to share a registry (e.g. a live
// monitor's) instead.
func WithCacheDir(dir string) FigureOption {
	return func(fc *figureConfig) {
		if dir != "" {
			fc.cache = rescache.New(dir, nil)
		}
	}
}

// NewFigureRunner returns a figure runner. scale stretches or shrinks run
// lengths (1 = the calibrated default of two phase-schedule passes; runs
// never drop below one full pass).
func NewFigureRunner(scale float64, opts ...FigureOption) *FigureRunner {
	var c figureConfig
	for _, o := range opts {
		o(&c)
	}
	r := experiments.NewParallelRunner(scale, c.jobs)
	r.Tracer = c.tracer
	r.Cache = c.cache
	r.Batch = c.batch
	if fn := c.progress; fn != nil {
		r.Progress = experiments.ProgressFunc(func(u experiments.RunUpdate) {
			rp := RunProgress{
				Benchmark:    u.Benchmark,
				Kind:         string(u.Kind),
				State:        string(u.State),
				Cycles:       u.Cycles,
				Translations: u.Translations,
				Total:        u.Total,
				Windows:      u.Windows,
				Elapsed:      u.Elapsed,
			}
			if u.Err != nil {
				rp.Err = u.Err.Error()
			}
			fn(rp)
		})
	}
	return &FigureRunner{runner: r, jobs: r.Jobs()}
}

// figureSpec describes one renderable experiment.
type figureSpec struct {
	id     string
	title  string
	render func(context.Context, *FigureRunner) (string, error)
}

var figureSpecs = []figureSpec{
	{"table1", "Table I: architectural design points", func(context.Context, *FigureRunner) (string, error) {
		return experiments.TableI().Render(), nil
	}},
	{"fig1", "Figure 1: gobmk vector intensity over time", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure1(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig2", "Figure 2: small vs large BPU IPC on msn", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure2(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig3", "Figure 3: 1-way vs 8-way MLC IPC on GemsFDTD", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure3(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig8", "Figure 8: phase signature quality", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure8(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig9", "Figure 9: unit activity, mobile", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure9(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig10", "Figure 10: unit activity, server", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure10(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig11", "Figure 11: policy change frequency", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure11(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig12", "Figure 12: performance comparison", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure12(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig13", "Figure 13: power and energy reduction", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure13(ctx, f.runner)
		if err != nil {
			return "", err
		}
		return r.RenderFigure13(), nil
	}},
	{"fig14", "Figure 14: leakage power reduction", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure14(ctx, f.runner)
		if err != nil {
			return "", err
		}
		return r.RenderFigure14(), nil
	}},
	{"fig15", "Figure 15: vector op prevalence among shards", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure15(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"fig16", "Figure 16: PowerChop vs timeout VPU gating", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.Figure16(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"hwcosts", "HTB/PVT hardware costs (Section IV-B4)", func(context.Context, *FigureRunner) (string, error) {
		return experiments.HardwareCosts().Render(), nil
	}},
	{"swcosts", "CDE software costs (Section IV-C3)", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.SoftwareCosts(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"perunit", "Per-unit isolation study (Section V-C)", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.PerUnit(ctx, f.runner, workload.All())
		return renderOf(r, err)
	}},
	{"policyzoo", "Policy zoo: energy saved vs slowdown per policy", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.PolicyZoo(ctx, f.runner)
		return renderOf(r, err)
	}},
	{"powertrace", "Power trace: per-window telemetry under PowerChop on gobmk", func(ctx context.Context, f *FigureRunner) (string, error) {
		r, err := experiments.PowerTrace(ctx, f.runner)
		return renderOf(r, err)
	}},
}

// renderer is anything with a Render method.
type renderer interface{ Render() string }

func renderOf(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

// FigureIDs lists the regenerable experiment identifiers.
func FigureIDs() []string {
	ids := make([]string, len(figureSpecs))
	for i, s := range figureSpecs {
		ids[i] = s.id
	}
	return ids
}

// FigureTitle returns the experiment's title.
func FigureTitle(id string) (string, error) {
	for _, s := range figureSpecs {
		if s.id == id {
			return s.title, nil
		}
	}
	return "", fmt.Errorf("powerchop: unknown figure %q (known: %v)", id, FigureIDs())
}

// RenderFigure regenerates one experiment and writes its text rendering.
func (f *FigureRunner) RenderFigure(w io.Writer, id string) error {
	return f.RenderFigureContext(context.Background(), w, id)
}

// RenderFigureContext is RenderFigure under a context: when ctx carries
// a span (internal/obs/span) the figure renders under a "sweep" child
// span and every simulation it launches nests beneath it. The context
// never influences results — output is byte-identical regardless.
func (f *FigureRunner) RenderFigureContext(ctx context.Context, w io.Writer, id string) error {
	for _, s := range figureSpecs {
		if s.id == id {
			out, err := renderSpan(ctx, f, s)
			if err != nil {
				return err
			}
			_, err = io.WriteString(w, out)
			return err
		}
	}
	return fmt.Errorf("powerchop: unknown figure %q (known: %v)", id, FigureIDs())
}

// renderSpan runs one spec under its "sweep" span.
func renderSpan(ctx context.Context, f *FigureRunner, s figureSpec) (out string, err error) {
	ctx, sp := span.Start(ctx, "sweep", "figure="+s.id)
	defer func() { sp.EndErr(err) }()
	return s.render(ctx, f)
}

// RenderAll regenerates every experiment. With more than one job the
// figures render concurrently — the Runner's singleflight cache ensures
// shared simulations still happen once — but the output is written
// strictly in spec order, so it is byte-identical to a serial render.
func (f *FigureRunner) RenderAll(w io.Writer) error {
	return f.RenderAllContext(context.Background(), w)
}

// RenderAllContext is RenderAll under a context: each figure renders
// under its own "sweep" child span of the span ctx carries, if any.
func (f *FigureRunner) RenderAllContext(ctx context.Context, w io.Writer) error {
	outs := make([]string, len(figureSpecs))
	errs := make([]error, len(figureSpecs))
	if f.jobs > 1 {
		var wg sync.WaitGroup
		for i, s := range figureSpecs {
			wg.Add(1)
			go func(i int, s figureSpec) {
				defer wg.Done()
				outs[i], errs[i] = renderSpan(ctx, f, s)
			}(i, s)
		}
		wg.Wait()
	} else {
		for i, s := range figureSpecs {
			outs[i], errs[i] = renderSpan(ctx, f, s)
		}
	}
	for i, s := range figureSpecs {
		if _, err := fmt.Fprintf(w, "==== %s ====\n", s.title); err != nil {
			return err
		}
		if errs[i] != nil {
			return errs[i]
		}
		if _, err := io.WriteString(w, outs[i]); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// SuiteAverages summarizes PowerChop's headline numbers per suite (the
// aggregates quoted in the paper's abstract and Section V-D).
type SuiteAverages struct {
	Suite      string
	Slowdown   float64
	PowerRed   float64
	EnergyRed  float64
	LeakageRed float64
	Benchmarks int
}

// Headline computes per-suite and overall averages. Its two underlying
// sweeps share most simulations; with more than one job they run
// concurrently and the Runner deduplicates the overlap.
func (f *FigureRunner) Headline() ([]SuiteAverages, error) {
	return f.HeadlineContext(context.Background())
}

// HeadlineContext is Headline under a context: the two underlying
// sweeps run under "sweep" child spans of the span ctx carries, if any.
func (f *FigureRunner) HeadlineContext(ctx context.Context) ([]SuiteAverages, error) {
	var (
		perf    *experiments.PerfResult
		pwr     *experiments.PowerResult
		perfErr error
		pwrErr  error
	)
	sweep := func(name string, run func(context.Context) error) {
		ctx, sp := span.Start(ctx, "sweep", "figure="+name)
		sp.EndErr(run(ctx))
	}
	runPerf := func() {
		sweep("fig12", func(ctx context.Context) error {
			perf, perfErr = experiments.Figure12(ctx, f.runner)
			return perfErr
		})
	}
	runPwr := func() {
		sweep("power", func(ctx context.Context) error {
			pwr, pwrErr = experiments.PowerReductions(ctx, f.runner)
			return pwrErr
		})
	}
	if f.jobs > 1 {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); runPerf() }()
		go func() { defer wg.Done(); runPwr() }()
		wg.Wait()
	} else {
		runPerf()
		runPwr()
	}
	if perfErr != nil {
		return nil, perfErr
	}
	if pwrErr != nil {
		return nil, pwrErr
	}
	slows := map[string][]float64{}
	for _, row := range perf.Rows {
		slows[row.Suite] = append(slows[row.Suite], 1-row.PowerChop)
		slows["all"] = append(slows["all"], 1-row.PowerChop)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		if len(xs) == 0 {
			return 0
		}
		return s / float64(len(xs))
	}
	var out []SuiteAverages
	suites := append(workload.Suites(), "all")
	for _, s := range suites {
		out = append(out, SuiteAverages{
			Suite:      s,
			Slowdown:   mean(slows[s]),
			PowerRed:   pwr.AvgPower[s],
			EnergyRed:  pwr.AvgEnergy[s],
			LeakageRed: pwr.AvgLeakage[s],
			Benchmarks: len(slows[s]),
		})
	}
	return out, nil
}
